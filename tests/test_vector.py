"""The NumPy vector tier vs N scalar simulators: bit-identical.

The contract under test: a :class:`~repro.hdl.vector.VectorSimulator`
with N lanes produces, per lane and per cycle, exactly the register
contents (architectural *and* shadow-tag), array contents (including
``__tags`` shadow stores and the dense uint64 mirrors), and output-port
values of N scalar :class:`~repro.hdl.sim.Simulator` runs -- for random
programs across the 33-bit and 64-bit dtype boundaries, lane counts up
to 256, mid-run lane compaction, and majority-cohort dispatch.  Engine
selection (toolchain ``engine=``, CLI ``--engine``/auto, the
NumPy-missing gate) is covered at the bottom.

Skips with a reason when NumPy is not importable -- the vector tier is
an optional dependency; nothing here may silently pass without it.
"""

import re

import pytest

np = pytest.importorskip("numpy", reason="the vector engine needs NumPy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hdl import (
    BatchSimulator,
    HConst,
    HOp,
    HRef,
    Module,
    Simulator,
    VectorSimulator,
)
from repro.hdl import vector as vector_mod
from repro.hdl.vector import VECTOR_MAX_WIDTH, _NUMPY_HINT
from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.compiler import compile_program
from repro.sapper.crossval import assert_equivalent_suite, encode_inputs
from repro.toolchain import Toolchain

from tests import strategies
from tests.test_batch_sim import FSM_SRC, assert_lanes_match_scalars


def assert_dense_mirrors_match(batch):
    """The uint64 dense array mirrors agree with the canonical dicts."""
    for key, dense in batch.sregs.items():
        if not key.startswith("a:"):
            continue
        name = key[2:]
        arr = batch.module.arrays[name]
        for lane in range(batch.lanes):
            lane_arr = batch.arrays[name][lane]
            for idx in range(arr.size):
                want = lane_arr.get(idx, arr.default)
                assert int(dense[lane][idx]) == want, (
                    f"dense mirror {name}[{lane}][{idx}] diverged"
                )


def run_lockstep(design, traces, cycles, majority_fraction=None):
    """Drive a vector batch and per-lane scalar sims in lockstep."""
    module = design.module
    lanes = len(traces)
    batch = VectorSimulator(module, lanes)
    if majority_fraction is not None:
        batch.majority_fraction = majority_fraction
    sims = [Simulator(module) for _ in range(lanes)]
    for cycle in range(cycles):
        lane_inputs = [
            encode_inputs(design, traces[lane][cycle % len(traces[lane])])
            for lane in range(lanes)
        ]
        scalar_outs = [sim.step(inp) for sim, inp in zip(sims, lane_inputs)]
        batch_outs = batch.step(lane_inputs)
        assert batch_outs == scalar_outs, f"cycle {cycle}: outputs diverge"
        assert_lanes_match_scalars(module, batch, sims, cycle)
    assert_dense_mirrors_match(batch)
    return batch


def lockstep_raw(module, batch, input_fn, cycles):
    """Lockstep an already-built vector batch against fresh scalars on
    hand-built IR modules (*input_fn(lane, cycle) -> input dict*)."""
    sims = [Simulator(module, optimize=False) for _ in range(batch.lanes)]
    for lane in range(batch.lanes):
        for name in module.regs:
            sims[lane].regs[name] = batch.get_reg(lane, name)
        for name in module.arrays:
            sims[lane].arrays[name] = dict(batch.arrays[name][lane])
    for cycle in range(cycles):
        inputs = [input_fn(lane, cycle) for lane in range(batch.lanes)]
        want = [s.step(i) for s, i in zip(sims, inputs)]
        assert batch.step(inputs) == want, f"cycle {cycle}: outputs diverge"
        assert_lanes_match_scalars(module, batch, sims, cycle)


class TestRandomizedVectorEquivalence:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), st.integers(1, 5), st.data())
    def test_vector_matches_scalar_lanes(self, program, lanes, data):
        """N random traces on a random program: every lane bit-identical
        to a scalar run, including shadow-tag registers and tag arrays."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_vec")
        traces = [
            data.draw(strategies.stimulus_traces(cycles=5), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        run_lockstep(design, traces, cycles=5)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.wide_programs(), st.integers(2, 5), st.data())
    def test_wide_widths_cross_dtype_boundaries(self, program, lanes, data):
        """Random programs with 1/2-bit and 32/33/34-bit registers: the
        widths that straddle the old SWAR packing boundary must stay
        bit-identical on uint64 lane arrays."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_vec_wide")
        traces = [
            data.draw(strategies.stimulus_traces(cycles=5), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        run_lockstep(design, traces, cycles=5)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), st.data())
    def test_uniform_lanes_stay_identical(self, program, data):
        """Identical stimulus on every lane keeps lanes in lockstep --
        the uniform-state fast path must not diverge from scalar."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_vec_uniform")
        trace = data.draw(strategies.stimulus_traces(cycles=6))
        run_lockstep(design, [trace, trace, trace], cycles=6)

    def test_256_lanes_match_scalars(self):
        """A full 256-lane batch with per-lane divergent stimulus: every
        lane bit-identical to its scalar twin (the lane count the
        benchmark gate runs at)."""
        design = compile_program(FSM_SRC, two_level(), name="fsm_256")
        module = design.module
        lanes = 256
        batch = VectorSimulator(module, lanes)
        sims = [Simulator(module) for _ in range(lanes)]
        for cycle in range(24):
            inputs = [
                {"x": (lane * 37 + cycle * 11) & 255, "x__tag": lane & 1}
                for lane in range(lanes)
            ]
            want = [s.step(i) for s, i in zip(sims, inputs)]
            assert batch.step(inputs) == want, f"cycle {cycle}"
        assert_lanes_match_scalars(module, batch, sims, 23)


class TestVectorTier:
    """Tier assignment: datapaths the uint64 lowering admits must land
    in the vector ('v') tier, not silently fall back per-lane, and the
    cases SWAR cannot vectorize (variable shifts, mul/div/mod) must now
    vectorize too."""

    ADDER = """
    reg[31:0] a; reg[31:0] b; reg[32:0] sum; reg[0:0] flag;
    input[7:0] x;
    state s : L = {
        a := a + x;
        b := b ^ (a << 2);
        sum := a + b;
        flag := a < b;
        goto s;
    }
    """

    def test_datapath_lands_in_vector_tier(self):
        design = compile_program(self.ADDER, two_level(), name="vec_adder")
        batch = VectorSimulator(design.module, 4)
        tiers = batch.signal_tiers
        assert set(tiers.values()) <= {"p", "v"}, (
            f"unexpected per-lane fallback: "
            f"{[n for n, k in tiers.items() if k == 's']}"
        )
        assert "v" in tiers.values(), "vector tier unused on a wide datapath"
        # no slot packing: multi-bit registers live as (lanes,) ndarrays
        assert isinstance(batch.sregs["sum"], np.ndarray)
        assert batch.sregs["sum"].dtype == np.uint64

    VARSHIFT = """
    reg[15:0] v; input[3:0] k;
    state s : L = { v := v >> k; goto s; }
    """

    def test_variable_shift_stays_vectorized(self):
        """Variable shifts have no SWAR form but do have a ufunc form;
        the shift cone must land in the vector tier and stay
        bit-identical (including the k >= width clamp)."""
        design = compile_program(self.VARSHIFT, two_level(), name="vec_varshift")
        batch = VectorSimulator(design.module, 3)
        tiers = batch.signal_tiers
        wide_scalar = [
            n for n, k in tiers.items()
            if k == "s" and batch.module.width_of(n) > 1
        ]
        assert not wide_scalar, f"per-lane fallback on shifts: {wide_scalar}"
        sims = [Simulator(design.module) for _ in range(3)]
        for cycle in range(40):
            inputs = [{"v": 0, "k": (cycle + lane) % 16} for lane in range(3)]
            want = [s.step(i) for s, i in zip(sims, inputs)]
            assert batch.step(inputs) == want, cycle
            assert_lanes_match_scalars(design.module, batch, sims, cycle)

    MULMOD = """
    reg[31:0] p; reg[15:0] m; input[7:0] x;
    state s : L = {
        p := (p * 3) + x;
        m := p % (x + 1);
        goto s;
    }
    """

    def test_mul_and_mod_vectorized(self):
        """Multiply and modulo -- per-lane loops under SWAR -- must run
        on the vector tier, matching scalar semantics including the
        divide-by-zero conventions."""
        design = compile_program(self.MULMOD, two_level(), name="vec_mulmod")
        batch = VectorSimulator(design.module, 4)
        wide_scalar = [
            n for n, k in batch.signal_tiers.items()
            if k == "s" and batch.module.width_of(n) > 1
        ]
        assert not wide_scalar, f"per-lane fallback on mul/mod: {wide_scalar}"
        sims = [Simulator(design.module) for _ in range(4)]
        for cycle in range(48):
            inputs = [
                {"x": (lane * 59 + cycle * 13) & 255, "x__tag": 0}
                for lane in range(4)
            ]
            want = [s.step(i) for s, i in zip(sims, inputs)]
            assert batch.step(inputs) == want, cycle
            assert_lanes_match_scalars(design.module, batch, sims, cycle)


class TestDtypeBoundaries:
    """Hand-built IR at the uint64 edges: width 33 (SWAR's old packing
    boundary) and width 64 (the dtype's own wraparound)."""

    @staticmethod
    def _wrap_module(width):
        m = Module(f"wrap{width}")
        x = m.add_input("x", 32)
        m.add_reg("acc", width)
        acc = HRef("acc", width)
        m.assign("prod", HOp("mul", (acc, HOp("zext", (x,), width)), width))
        m.assign("nxt", HOp("add", (HRef("prod", width), HOp("zext", (x,), width)),
                            width))
        m.set_reg_next("acc", HRef("nxt", width))
        m.assign("msb", HOp("slice", (acc,), 1, hi=width - 1, lo=width - 1))
        m.assign("low", HOp("slice", (acc,), 8, hi=7, lo=0))
        m.set_output("msb", HRef("msb", 1))
        m.set_output("low", HRef("low", 8))
        m.validate()
        return m

    @pytest.mark.parametrize("width", [33, VECTOR_MAX_WIDTH])
    def test_accumulator_wraps_like_scalar(self, width):
        """acc := acc * x + x grows ~5 bits/cycle and wraps the declared
        width many times over; uint64 wraparound (and the width-33 mask)
        must agree with the scalar big-int semantics bit-for-bit."""
        m = self._wrap_module(width)
        batch = VectorSimulator(m, 4, optimize=False)
        assert batch.signal_tiers["nxt"] == "v"
        for lane in range(4):
            batch.set_reg(lane, "acc", ((1 << width) - 1) - lane)
        lockstep_raw(
            m, batch,
            lambda lane, cycle: {"x": (23 + lane * 7 + cycle * 5) & 0xFFFFFFFF},
            cycles=40,
        )

    def test_shift_and_compare_at_width_64(self):
        """Shifts, arithmetic shift clamping, and signed compares on
        full-width 64-bit values (sign bit 63) against scalar."""
        w = VECTOR_MAX_WIDTH
        m = Module("edge64")
        k = m.add_input("k", 7)
        x = m.add_input("x", 32)
        m.add_reg("acc", w)
        acc = HRef("acc", w)
        m.assign("nxt", HOp("xor", (
            HOp("shl", (acc, HOp("zext", (k,), w)), w),
            HOp("zext", (x,), w),
        ), w))
        m.set_reg_next("acc", HRef("nxt", w))
        m.assign("sar", HOp("asr", (acc, HOp("zext", (k,), w)), w))
        m.assign("neg", HOp("lts", (acc, HConst(0, w)), 1))
        m.assign("top", HOp("slice", (HRef("sar", w),), 8, hi=63, lo=56))
        m.set_output("top", HRef("top", 8))
        m.set_output("neg", HRef("neg", 1))
        m.validate()
        batch = VectorSimulator(m, 3, optimize=False)
        for lane in range(3):
            batch.set_reg(lane, "acc", (0x8000_0000_0000_0001 + lane * 0x1234) % (1 << w))
        lockstep_raw(
            m, batch,
            lambda lane, cycle: {"k": (cycle * 3 + lane) % 80,
                                 "x": (lane * 977 + cycle * 131) & 0xFFFFFFFF},
            cycles=48,
        )


class TestLowMulWindow:
    """The MIPS-style doubled-width product: ``slice`` windows inside
    the low 64 bits of a ``mul`` wider than 64 vectorize via exact
    uint64 wraparound; windows reaching above bit 63 fall back to the
    scalar tier -- and both stay bit-identical."""

    @staticmethod
    def _mult_module():
        m = Module("mult")
        a = m.add_input("a", 32)
        b = m.add_input("b", 32)
        prod = HOp("mul", (HOp("sext", (a,), 64), HOp("sext", (b,), 64)), 128)
        m.assign("lo", HOp("slice", (prod,), 32, hi=31, lo=0))
        m.assign("hi", HOp("slice", (prod,), 32, hi=63, lo=32))
        m.add_reg("rlo", 32)
        m.add_reg("rhi", 32)
        m.set_reg_next("rlo", HRef("lo", 32))
        m.set_reg_next("rhi", HRef("hi", 32))
        m.set_output("olo", HRef("rlo", 32))
        m.set_output("ohi", HRef("rhi", 32))
        m.validate()
        return m

    def test_low_window_vectorizes_and_matches(self):
        m = self._mult_module()
        batch = VectorSimulator(m, 4, optimize=False)
        tiers = batch.signal_tiers
        assert tiers["lo"] == "v" and tiers["hi"] == "v", tiers
        extremes = [0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xDEADBEEF]

        def stim(lane, cycle):
            return {
                "a": extremes[(lane + cycle) % len(extremes)],
                "b": extremes[(lane * 3 + cycle * 2) % len(extremes)],
            }

        lockstep_raw(m, batch, stim, cycles=36)

    def test_high_window_falls_back_per_step(self):
        """A window above bit 63 cannot ride uint64; that signal alone
        drops to the scalar tier while the rest of the step stays
        vectorized -- the per-step fallback contract."""
        m = Module("mult_hi")
        a = m.add_input("a", 40)
        b = m.add_input("b", 40)
        prod = HOp("mul", (HOp("zext", (a,), 64), HOp("zext", (b,), 64)), 80)
        m.assign("top", HOp("slice", (prod,), 16, hi=79, lo=64))
        m.assign("low", HOp("slice", (prod,), 16, hi=15, lo=0))
        m.add_reg("rt", 16)
        m.add_reg("rl", 16)
        m.set_reg_next("rt", HRef("top", 16))
        m.set_reg_next("rl", HRef("low", 16))
        m.set_output("ot", HRef("rt", 16))
        m.set_output("ol", HRef("rl", 16))
        m.validate()
        batch = VectorSimulator(m, 3, optimize=False)
        tiers = batch.signal_tiers
        assert tiers["top"] == "s", tiers  # above the uint64 window
        assert tiers["low"] == "v", tiers  # inside it
        lockstep_raw(
            m, batch,
            lambda lane, cycle: {
                "a": ((1 << 40) - 1 - lane * 7919 - cycle) % (1 << 40),
                "b": (0x55_5555_5555 + lane + cycle * 104729) % (1 << 40),
            },
            cycles=24,
        )


class TestMaskElision:
    """Guard/width masks provably unnecessary must be elided -- in the
    SWAR emitter (guard-band clamp) and the vector emitter (width
    clamp) -- without ever corrupting lane values."""

    ELIDE = """
    reg[7:0] r; input[7:0] x; input[7:0] y;
    state s : L = { r := (x >> 5) + (y >> 5); goto s; }
    """
    CARRY = """
    reg[7:0] r; input[7:0] x; input[7:0] y;
    state s : L = { r := x + y; goto s; }
    """
    MASKED_ADD = re.compile(r"\(\([^()]+ \+ [^()]+\) & ")

    @staticmethod
    def _entry_source(design, cls):
        return cls(design.module, 2)._entry.source

    def test_swar_add_guard_mask_elided(self):
        """Two 3-bit values summed into an 8-bit slot cannot carry into
        the guard bit: the SWAR add must emit no clamp, while a
        full-width add keeps one."""
        elide = compile_program(self.ELIDE, two_level(), name="swar_elide")
        carry = compile_program(self.CARRY, two_level(), name="swar_carry")
        assert not self.MASKED_ADD.search(self._entry_source(elide, BatchSimulator))
        assert self.MASKED_ADD.search(self._entry_source(carry, BatchSimulator))

    def test_vector_add_width_mask_elided(self):
        elide = compile_program(self.ELIDE, two_level(), name="vec_elide")
        carry = compile_program(self.CARRY, two_level(), name="vec_carry")
        assert not self.MASKED_ADD.search(self._entry_source(elide, VectorSimulator))
        assert self.MASKED_ADD.search(self._entry_source(carry, VectorSimulator))

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_elision_never_corrupts_values(self, data):
        """Adversarial boundary stimulus through the elidable design:
        SWAR and vector engines both bit-identical to scalar."""
        design = compile_program(self.ELIDE, two_level(), name="elide_lockstep")
        module = design.module
        for batch in (BatchSimulator(module, 3), VectorSimulator(module, 3)):
            sims = [Simulator(module) for _ in range(3)]
            for cycle in range(12):
                inputs = [
                    {"x": data.draw(st.sampled_from([0, 31, 32, 224, 255])),
                     "y": data.draw(st.sampled_from([0, 31, 32, 224, 255])),
                     "x__tag": 0, "y__tag": 0}
                    for _ in range(3)
                ]
                want = [s.step(i) for s, i in zip(sims, inputs)]
                assert batch.step(inputs) == want, cycle
                assert_lanes_match_scalars(module, batch, sims, cycle)


class TestLaneCompaction:
    """compact() on the vector engine: ndarray re-slicing must keep
    every surviving lane (registers, packed tags, dense array mirrors)
    bit-identical to the scalar run it replaces."""

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), st.integers(2, 5), st.data())
    def test_compaction_matches_scalar_lanes(self, program, lanes, data):
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_vec_compact")
        module = design.module
        cycles = 6
        traces = [
            data.draw(strategies.stimulus_traces(cycles=cycles), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        batch = VectorSimulator(module, lanes)
        sims = {lane: Simulator(module) for lane in range(lanes)}
        for cycle in range(cycles):
            active = list(batch.active_lanes)
            lane_inputs = [
                encode_inputs(design, traces[orig][cycle]) for orig in active
            ]
            want = [sims[orig].step(inp) for orig, inp in zip(active, lane_inputs)]
            got = batch.step(lane_inputs)
            assert got == want, f"cycle {cycle}: outputs diverge"
            assert_lanes_match_scalars(
                module, batch, [sims[orig] for orig in active], cycle
            )
            if batch.lanes > 1:
                retired = data.draw(
                    st.lists(
                        st.integers(0, batch.lanes - 1),
                        unique=True,
                        max_size=batch.lanes - 1,
                    ),
                    label=f"retire@{cycle}",
                )
                if retired:
                    gone = batch.compact(retired)
                    for orig in gone:
                        del sims[orig]
                    survivors = [sims[orig] for orig in batch.active_lanes]
                    assert_lanes_match_scalars(module, batch, survivors, cycle)
                    assert_dense_mirrors_match(batch)

    def test_compact_down_to_one_lane(self):
        design = compile_program(samples.TDMA, two_level(), name="vec_c1")
        module = design.module
        batch = VectorSimulator(module, 4)
        sims = [Simulator(module) for _ in range(4)]
        inp = {"hi_in": 9, "hi_in__tag": 1, "lo_in": 4, "lo_in__tag": 0}
        for _ in range(20):
            want = [s.step(inp) for s in sims]
            assert batch.step(inp) == want
        assert batch.compact([0, 1, 3]) == [0, 1, 3]
        assert batch.active_lanes == [2] and batch.lanes == 1
        sims = [sims[2]]
        for cycle in range(30):
            want = [s.step(inp) for s in sims]
            assert batch.step(inp) == want
            assert_lanes_match_scalars(module, batch, sims, cycle)

    def test_retire_when_drives_run_compaction(self):
        design = compile_program(samples.TDMA, two_level(), name="vec_ret")
        module = design.module
        batch = VectorSimulator(
            module, 3,
            retire_when=lambda sim, lane: sim.active_lanes[lane] == 1
            and sim.cycles >= 5,
        )
        outs = batch.run(10)
        assert batch.active_lanes == [0, 2]
        assert batch.lanes == 2 == len(outs)
        assert batch.compactions == 1 and batch.cycles == 10
        twin = VectorSimulator(module, 3)
        twin.run(10)
        for pos, orig in enumerate(batch.active_lanes):
            assert batch.lane_regs(pos) == twin.lane_regs(orig)


class TestMajorityDispatch:
    """Cohort split via fancy-indexing gather/scatter must equal the
    generic vector step bit-for-bit."""

    def _lockstep(self, lanes, lane_x, cycles=160, fraction=0.5):
        design = compile_program(FSM_SRC, two_level(), name=f"vec_maj{lanes}")
        module = design.module
        batch = VectorSimulator(module, lanes)
        batch.majority_fraction = fraction
        sims = [Simulator(module) for _ in range(lanes)]
        for cycle in range(cycles):
            lane_inputs = [{"x": lane_x[lane], "x__tag": 0} for lane in range(lanes)]
            want = [s.step(i) for s, i in zip(sims, lane_inputs)]
            got = batch.step(lane_inputs)
            assert got == want, f"cycle {cycle}"
            assert_lanes_match_scalars(module, batch, sims, cycle)
        return batch

    def test_half_and_half_split(self):
        batch = self._lockstep(6, [3, 3, 3, 103, 103, 103])
        assert batch.split_steps > 0, "50/50 population never split"

    def test_three_way_state_mix(self):
        batch = self._lockstep(6, [3, 3, 53, 53, 103, 103], fraction=0.3)
        assert batch.split_steps > 0, "three-way population never split"

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), st.integers(3, 6), st.data())
    def test_majority_dispatch_matches_scalars(self, program, lanes, data):
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_vec_majority")
        traces = [
            data.draw(strategies.stimulus_traces(cycles=5), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        run_lockstep(design, traces, cycles=5, majority_fraction=0.34)

    def test_split_disabled_by_flag(self):
        design = compile_program(FSM_SRC, two_level(), name="vec_nomaj")
        module = design.module
        batch = VectorSimulator(module, 6, majority=False)
        ref = VectorSimulator(module, 6)
        ref.majority_fraction = 0.3
        for cycle in range(160):
            lane_inputs = [{"x": 3 + 50 * (lane % 3), "x__tag": 0} for lane in range(6)]
            assert batch.step(lane_inputs) == ref.step(lane_inputs), cycle
        assert batch.split_steps == 0
        assert ref.split_steps > 0


class TestVectorApi:
    def test_entries_cached_per_engine(self):
        design = compile_program(TestVectorTier.ADDER, two_level(), name="vec_cache")
        module = design.module
        vec = VectorSimulator(module, 2)
        assert vec._entry is VectorSimulator(module, 4)._entry
        assert vec._entry is not BatchSimulator(module, 2)._entry
        assert vec._entry is not BatchSimulator(module, 2, swar=False)._entry

    def test_stored_arrays_are_immutable_values(self):
        """set_reg must copy-before-write: a lane write may never mutate
        an ndarray another consumer could be holding."""
        design = compile_program(TestVectorTier.ADDER, two_level(), name="vec_cow")
        batch = VectorSimulator(design.module, 3)
        before = batch.sregs["sum"]
        snapshot = before.copy()
        batch.set_reg(1, "sum", 0x1_2345_6789 & ((1 << 33) - 1))
        assert batch.sregs["sum"] is not before
        assert (before == snapshot).all(), "stored array mutated in place"
        assert batch.get_reg(1, "sum") == 0x1_2345_6789 & ((1 << 33) - 1)
        assert batch.get_reg(0, "sum") == 0

    @staticmethod
    def _mem_module():
        m = Module("mem")
        a = m.add_input("addr", 4)
        d = m.add_input("data", 8)
        m.add_array("mem", 8, 16)
        m.assign("rd", HOp("read", (a,), 8, array="mem"))
        m.add_reg("acc", 8)
        m.assign("nxt", HOp("add", (HRef("acc", 8), HRef("rd", 8)), 8))
        m.set_reg_next("acc", HRef("nxt", 8))
        m.write_array("mem", a, d, HConst(1, 1))
        m.set_output("o", HRef("acc", 8))
        m.validate()
        return m

    def test_load_array_updates_dense_mirror(self):
        m = self._mem_module()
        batch = VectorSimulator(m, 2, optimize=False)
        assert "a:mem" in batch.sregs, "small array must get a dense mirror"
        batch.load_array(1, "mem", {i: (i * 3 + 1) % 7 for i in range(16)})
        assert_dense_mirrors_match(batch)
        # and the loaded state feeds the vectorized read correctly
        lockstep_raw(
            m, batch,
            lambda lane, cycle: {"addr": (cycle + lane) % 16,
                                 "data": (5 * cycle + lane) & 255},
            cycles=20,
        )

    def test_numpy_missing_raises_actionable_error(self, monkeypatch):
        monkeypatch.setattr(vector_mod, "HAVE_NUMPY", False)
        design = compile_program(samples.TDMA, two_level(), name="vec_nonp")
        with pytest.raises(RuntimeError, match="NumPy"):
            VectorSimulator(design.module, 4)
        # the message must tell the user what to do, not just what broke
        assert "numpy" in _NUMPY_HINT and "swar" in _NUMPY_HINT


class TestToolchainEngines:
    def test_engine_parameter_selects_simulator(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tc_engines")
        vec = tc.batch_simulator(design, 4, engine="vector")
        assert isinstance(vec, VectorSimulator)
        swar = tc.batch_simulator(design, 4, engine="swar")
        assert type(swar) is BatchSimulator and swar.swar
        plain = tc.batch_simulator(design, 4, engine="batch")
        assert type(plain) is BatchSimulator and not plain.swar
        with pytest.raises(ValueError, match="unknown batch engine"):
            tc.batch_simulator(design, 4, engine="simd")

    def test_engines_agree_on_tdma(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tc_agree")
        sims = [
            tc.batch_simulator(design, 3, engine=e)
            for e in ("batch", "swar", "vector")
        ]
        inp = {"hi_in": 9, "hi_in__tag": 1, "lo_in": 4, "lo_in__tag": 0}
        for cycle in range(40):
            outs = [s.step(inp) for s in sims]
            assert outs[0] == outs[1] == outs[2], cycle

    def test_crossval_suite_over_vector_engine(self):
        stimuli = [
            (lambda lane: lambda cycle: {
                "hi_in": ((7 * lane + cycle) & 255, "H"),
                "lo_in": ((3 * lane + 2 * cycle) & 255, "L"),
            })(lane)
            for lane in range(3)
        ]
        bcv = assert_equivalent_suite(
            samples.TDMA, two_level(), cycles=25, stimuli=stimuli,
            name="vec_crossval", engine="vector",
        )
        assert isinstance(bcv.batch, VectorSimulator)


class TestCliEngineSelection:
    @pytest.fixture
    def tdma_file(self, tmp_path):
        path = tmp_path / "tdma.sapper"
        path.write_text(samples.TDMA)
        return str(path)

    @pytest.fixture
    def recorded(self, monkeypatch):
        calls = []
        original = Toolchain.batch_simulator

        def recorder(self, design, lanes, *args, **kwargs):
            calls.append(kwargs.get("engine"))
            return original(self, design, lanes, *args, **kwargs)

        monkeypatch.setattr(Toolchain, "batch_simulator", recorder)
        return calls

    def test_explicit_vector_engine(self, tdma_file, recorded, capsys):
        from repro.cli import main

        assert main(["simulate", tdma_file, "-n", "5", "--lanes", "4",
                     "--engine", "vector", "--quiet"]) == 0
        assert recorded == ["vector"]
        assert "4 lanes" in capsys.readouterr().out

    def test_auto_prefers_vector_at_wide_batches(self, tdma_file, recorded, capsys):
        from repro import cli

        assert cli.main(["simulate", tdma_file, "-n", "3",
                         "--lanes", str(cli._VECTOR_AUTO_LANES), "--quiet"]) == 0
        assert recorded == ["vector"]

    def test_auto_prefers_swar_at_narrow_batches(self, tdma_file, recorded, capsys):
        from repro.cli import main

        assert main(["simulate", tdma_file, "-n", "3", "--lanes", "4",
                     "--quiet"]) == 0
        assert recorded == ["swar"]

    def test_auto_without_numpy_falls_back_to_swar(self, tdma_file, recorded,
                                                   monkeypatch, capsys):
        from repro import cli

        monkeypatch.setattr(cli, "_have_numpy", lambda: False)
        assert cli.main(["simulate", tdma_file, "-n", "3",
                         "--lanes", "128", "--quiet"]) == 0
        assert recorded == ["swar"]

    def test_explicit_vector_without_numpy_is_actionable(self, tdma_file,
                                                         monkeypatch):
        from repro import cli

        monkeypatch.setattr(cli, "_have_numpy", lambda: False)
        with pytest.raises(SystemExit, match="NumPy"):
            cli.main(["simulate", tdma_file, "-n", "3", "--lanes", "4",
                      "--engine", "vector", "--quiet"])

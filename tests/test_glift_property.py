"""Property test: GLIFT tracking is complete (conservative).

For any small design, flipping a tainted input bit must never change an
output bit that GLIFT reports as untainted -- the completeness property
the paper relies on ("the tracking technique is guaranteed to be
complete ... since all forms of information flow become explicit at the
gate level").
"""

from hypothesis import given, settings, strategies as st

from repro.glift import GliftSimulator
from repro.hdl import HOp, Module
from repro.hdl.netlist import NetlistSimulator, bit_blast


def make_design(kind: str) -> Module:
    m = Module(f"prop_{kind}")
    a = m.add_input("a", 8)
    b = m.add_input("b", 8)
    if kind == "and":
        y = m.fresh(HOp("and", (a, b), 8), "y")
    elif kind == "or":
        y = m.fresh(HOp("or", (a, b), 8), "y")
    elif kind == "xor":
        y = m.fresh(HOp("xor", (a, b), 8), "y")
    elif kind == "add":
        y = m.fresh(HOp("add", (a, b), 8), "y")
    elif kind == "mux":
        sel = m.fresh(HOp("slice", (a,), 1, hi=0, lo=0), "sel")
        y = m.fresh(HOp("mux", (sel, a, b), 8), "y")
    else:  # compare
        y = m.fresh(HOp("lt", (a, b), 1), "y")
    m.set_output("y", y)
    return m


@settings(max_examples=60, deadline=None)
@given(
    kind=st.sampled_from(["and", "or", "xor", "add", "mux", "cmp"]),
    a=st.integers(0, 255),
    b=st.integers(0, 255),
    taint_bit=st.integers(0, 7),
    taint_a=st.booleans(),
)
def test_glift_completeness(kind, a, b, taint_bit, taint_a):
    module = make_design(kind)
    netlist = bit_blast(module)
    mask = 1 << taint_bit
    taints = {"a": mask} if taint_a else {"b": mask}

    glift = GliftSimulator(netlist)
    _, out_taints = glift.step_tainted({"a": a, "b": b}, taints)

    ref = NetlistSimulator(netlist)
    base = ref.step({"a": a, "b": b})["y"]
    flipped_inputs = {"a": a ^ mask, "b": b} if taint_a else {"a": a, "b": b ^ mask}
    ref2 = NetlistSimulator(netlist)
    flipped = ref2.step(flipped_inputs)["y"]

    changed = base ^ flipped
    assert changed & ~out_taints["y"] == 0, (
        f"bit(s) {changed & ~out_taints['y']:#x} changed but were untainted"
    )


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_glift_values_undisturbed(a, b):
    """Adding shadow logic never changes the functional outputs."""
    module = make_design("add")
    netlist = bit_blast(module)
    plain = NetlistSimulator(netlist).step({"a": a, "b": b})["y"]
    shadowed, _ = GliftSimulator(netlist).step_tainted({"a": a, "b": b}, {"a": 0xFF})
    assert shadowed["y"] == plain

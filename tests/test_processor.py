"""Integration tests for the Sapper MIPS processor (sections 4.1-4.2)."""

from repro.lattice import diamond, two_level
from repro.mips.assembler import assemble
from repro.proc.design import design_sections, generate_design
from repro.proc.machine import SapperMachine, run_on_iss

HALT = """
    li   $t9, 0x40000004
    sw   $zero, 0($t9)
"""

OUT_V0 = """
    li   $t8, 0x40000000
    sw   $v0, 0($t8)
"""


def run_both(src: str, max_cycles: int = 60_000):
    """Run on the golden ISS and the compiled hardware; require equal output."""
    exe = assemble(src)
    iss = run_on_iss(exe)
    machine = SapperMachine()
    machine.load(assemble(src))
    res = machine.run(max_cycles)
    assert res.halted, "hardware did not halt"
    assert tuple(res.outputs) == tuple(iss.outputs), (
        f"hw={res.outputs} iss={iss.outputs}"
    )
    return iss, res


class TestDesignGeneration:
    def test_source_parses_and_compiles(self):
        from repro.sapper.analysis import analyze
        from repro.sapper.parser import parse_program

        src = generate_design()
        info = analyze(parse_program(src, "proc"), two_level())
        assert "Pipeline" in info.states and "Refill" in info.states
        assert info.parent["Pipeline"] == "Slave"

    def test_sections_cover_figure8_components(self):
        sections = design_sections()
        names = set(sections)
        assert "Fetch" in names and "Write Back" in names
        assert "Execute + ALU + FPU" in names
        assert all(text.strip() for text in sections.values())

    def test_diamond_variant_generates(self):
        src = generate_design(diamond())
        assert "state Boot" in src

    def test_memory_is_enforced_and_tagged(self):
        machine = SapperMachine()
        assert "memory__tags" in machine.design.module.arrays
        assert machine.design.module.arrays["memory"].is_sram


class TestBasicExecution:
    def test_arith_loop(self):
        iss, res = run_both(
            f"""
            .org 0x400
                li   $t0, 0
                li   $t1, 1
            loop:
                add  $t0, $t0, $t1
                addiu $t1, $t1, 1
                li   $t2, 10
                ble  $t1, $t2, loop
                move $v0, $t0
            {OUT_V0}
            {HALT}
            """
        )
        assert res.outputs == [55]
        assert res.violations == 0

    def test_memory_bytes_halfwords(self):
        run_both(
            f"""
            .org 0x400
                li   $t0, 0x10000
                li   $t1, 0x11223344
                sw   $t1, 0($t0)
                lbu  $v0, 1($t0)
            {OUT_V0}
                lhu  $v0, 2($t0)
            {OUT_V0}
                lb   $v0, 3($t0)
            {OUT_V0}
                sb   $t1, 5($t0)
                sh   $t1, 6($t0)
                lw   $v0, 4($t0)
            {OUT_V0}
            {HALT}
            """
        )

    def test_consecutive_subword_stores(self):
        # regression: byte-enable masks must be computed at word width
        iss, res = run_both(
            f"""
            .org 0x400
                li   $s2, 0x11000
                li   $t1, 0x55
                li   $t0, 0x77
                sb   $t1, 0($s2)
                sb   $t0, 1($s2)
                sb   $t1, 2($s2)
                sb   $t0, 3($s2)
                lw   $v0, 0($s2)
            {OUT_V0}
            {HALT}
            """
        )
        assert res.outputs == [0x77557755]

    def test_unaligned_lwl_lwr(self):
        run_both(
            f"""
            .org 0x400
                li   $t0, 0x10000
                li   $t1, 0x44332211
                sw   $t1, 0($t0)
                li   $t2, 0x88776655
                sw   $t2, 4($t0)
                li   $v0, 0
                lwr  $v0, 2($t0)
                lwl  $v0, 5($t0)
            {OUT_V0}
            {HALT}
            """
        )

    def test_mult_div_and_hilo(self):
        run_both(
            f"""
            .org 0x400
                li   $t0, -77
                li   $t1, 13
                div  $t0, $t1
                mflo $v0
            {OUT_V0}
                mfhi $v0
            {OUT_V0}
                li   $t0, 100000
                li   $t1, 30000
                mult $t0, $t1
                mfhi $v0
            {OUT_V0}
                multu $t0, $t1
                mflo $v0
            {OUT_V0}
            {HALT}
            """
        )

    def test_shifts_and_compares(self):
        run_both(
            f"""
            .org 0x400
                li   $t0, 0x80000001
                sra  $v0, $t0, 4
            {OUT_V0}
                srl  $v0, $t0, 4
            {OUT_V0}
                li   $t1, 3
                sllv $v0, $t0, $t1
            {OUT_V0}
                slt  $v0, $t0, $zero
            {OUT_V0}
                sltu $v0, $t0, $zero
            {OUT_V0}
                slti $v0, $t0, 5
            {OUT_V0}
            {HALT}
            """
        )

    def test_function_calls(self):
        iss, res = run_both(
            f"""
            .org 0x400
                li   $a0, 6
                jal  fact
                move $v0, $v1
            {OUT_V0}
            {HALT}
            fact:
                li   $v1, 1
                li   $t0, 1
            floop:
                bgt  $t0, $a0, fdone
                mult $v1, $t0
                mflo $v1
                addiu $t0, $t0, 1
                b    floop
            fdone:
                jr   $ra
            """
        )
        assert res.outputs == [720]

    def test_fpu_pipeline(self):
        run_both(
            f"""
            .org 0x400
                la    $t0, vals
                lwc1  $f0, 0($t0)
                lwc1  $f1, 4($t0)
                add.s $f2, $f0, $f1
                mul.s $f3, $f2, $f2
                div.s $f4, $f3, $f1
                sub.s $f5, $f4, $f0
                neg.s $f6, $f5
                abs.s $f7, $f6
                cvt.w.s $f8, $f7
                mfc1  $v0, $f8
            {OUT_V0}
                li    $t1, 41
                mtc1  $t1, $f9
                cvt.s.w $f10, $f9
                cvt.w.s $f11, $f10
                mfc1  $v0, $f11
            {OUT_V0}
                le.s  $f0, $f1
                bc1t  yes
                li    $v0, 0
                b     done
            yes:
                li    $v0, 1
            done:
            {OUT_V0}
            {HALT}
            vals: .float 1.5, 2.5
            """
        )

    def test_forwarding_chains(self):
        # back-to-back dependent instructions exercise distance-1 forwarding
        iss, res = run_both(
            f"""
            .org 0x400
                li   $t0, 1
                addu $t1, $t0, $t0
                addu $t2, $t1, $t1
                addu $t3, $t2, $t2
                addu $v0, $t3, $t3
            {OUT_V0}
                lw   $t4, 0x10000($zero)
                addu $v0, $t4, $t3
            {OUT_V0}
            {HALT}
            """
        )
        assert res.outputs[0] == 16


class TestCacheBehaviour:
    def test_repeated_loop_hits_cache(self):
        # the second pass over the same code should not refill
        machine = SapperMachine()
        machine.load(
            assemble(
                f"""
                .org 0x400
                    li   $t0, 0
                    li   $t1, 0
                loop:
                    addiu $t0, $t0, 1
                    li   $t2, 50
                    blt  $t0, $t2, loop
                    move $v0, $t0
                {OUT_V0}
                {HALT}
                """
            )
        )
        res = machine.run(30_000)
        assert res.halted and res.outputs == [50]
        # 50 iterations of a 3-instruction loop at ~1 CPI plus boot:
        # gross cycle count stays near boot + instructions + few refills
        assert res.cycles < 256 + 50 * 5 + 400

    def test_store_then_load_roundtrip_through_cache(self):
        run_both(
            f"""
            .org 0x400
                li   $t0, 0x18000
                li   $t1, 0
                li   $t2, 0
            fill:
                sll  $t3, $t1, 2
                addu $t3, $t3, $t0
                sw   $t1, 0($t3)
                addiu $t1, $t1, 1
                li   $t4, 16
                blt  $t1, $t4, fill
                li   $t1, 0
            sum:
                sll  $t3, $t1, 2
                addu $t3, $t3, $t0
                lw   $t5, 0($t3)
                addu $t2, $t2, $t5
                addiu $t1, $t1, 1
                blt  $t1, $t4, sum
                move $v0, $t2
            {OUT_V0}
            {HALT}
            """
        )


class TestSecurityInstructions:
    def test_h_cannot_write_l_memory_or_port(self):
        machine = SapperMachine()
        machine.load(
            assemble(
                """
                .org 0x400
                    li   $t0, 0x10000
                    li   $t1, 42
                    sw   $t1, 0($t0)
                    la   $t2, hcode
                    jr   $t2
                .org 0x2000
                hcode:
                    li   $t3, 0x10004
                    li   $t4, 99
                    sw   $t4, 0($t3)
                    li   $t5, 0x20000
                    sw   $t4, 0($t5)
                    li   $t8, 0x40000000
                    sw   $t4, 0($t8)
                spin:
                    b    spin
                """
            )
        )
        machine.tag_region(0x2000, 0x2100, "H")
        machine.tag_region(0x20000, 0x20100, "H")
        for _ in range(3000):
            machine.step()
        assert machine.read_word(0x10000) == 42
        assert machine.read_word(0x10004) == 0, "H store into L memory must be blocked"
        assert machine.read_word(0x20000) == 99, "H store into H memory must succeed"
        assert machine.outputs == [], "H writes to the L output port must be blocked"
        assert machine.violations > 0

    def test_setrtag_labels_memory(self):
        machine = SapperMachine()
        machine.load(
            assemble(
                f"""
                .org 0x400
                    li   $t0, 0x20000
                    li   $t1, 1
                    setrtag $t0, $t1
                {HALT}
                """
            )
        )
        res = machine.run(10_000)
        assert res.halted
        assert machine.word_tag(0x20000) == "H"

    def test_h_cannot_setrtimer(self):
        machine = SapperMachine()
        machine.load(
            assemble(
                """
                .org 0x400
                    la   $t2, hcode
                    jr   $t2
                .org 0x2000
                hcode:
                    li   $t0, 5000
                    setrtimer $t0
                spin:
                    b    spin
                """
            )
        )
        machine.tag_region(0x2000, 0x2100, "H")
        for _ in range(2000):
            machine.step()
        assert machine.sim.regs["timer"] == 0, "H code must not arm the trusted timer"
        assert machine.violations > 0

    def test_timer_preempts_spinning_h_code(self):
        machine = SapperMachine()
        machine.load(
            assemble(
                """
                .org 0x400
                    li   $t7, 0x30000
                    lw   $t6, 0($t7)
                    addiu $t6, $t6, 1
                    sw   $t6, 0($t7)
                    li   $t2, 3
                    ble  $t6, $t2, dispatch
                    li   $t9, 0x40000004
                    sw   $zero, 0($t9)
                dispatch:
                    li   $t0, 60
                    setrtimer $t0
                    la   $t1, hspin
                    jr   $t1
                .org 0x2000
                hspin:
                    b    hspin
                """
            )
        )
        machine.tag_region(0x2000, 0x2100, "H")
        res = machine.run(30_000)
        assert res.halted
        assert machine.read_word(0x30000) == 4
        assert res.violations == 0


class TestKernel:
    def test_kernel_schedules_and_isolates(self):
        from repro.eval.figures import sec44_security_validation

        result = sec44_security_validation()
        assert result["halted"]
        assert result["low_traces_equal"], "low-observable outputs leaked high data"
        assert result["timing_equal"], "cycle counts leaked high data (timing channel)"
        assert result["l_results_equal"]
        assert result["h_results_differ"], "high processes should compute different values"
        assert result["low_trace"] == (465,)  # sum of 1..30


class TestProcessorArtifacts:
    def test_verilog_emission_of_full_processor(self):
        from repro.hdl import emit_verilog
        from repro.proc.machine import compile_processor

        design = compile_processor(two_level(), secure=True)
        text = emit_verilog(design.module)
        assert text.startswith("module sapper_mips(")
        assert "always @(posedge clk)" in text
        assert "violation" in text
        assert len(text.splitlines()) > 5000  # the full datapath + security logic

    def test_base_variant_smaller_than_secure(self):
        from repro.hdl import synthesize
        from repro.proc.machine import compile_processor

        base = synthesize(compile_processor(two_level(), secure=False).module)
        secure = synthesize(compile_processor(two_level(), secure=True).module)
        assert base.area_um2 < secure.area_um2 < base.area_um2 * 1.6

    def test_diamond_processor_boots_and_runs(self):
        machine = SapperMachine(diamond())
        machine.load(
            assemble(
                f"""
                .org 0x400
                    li   $t0, 11
                    li   $t1, 31
                    mult $t0, $t1
                    mflo $v0
                {OUT_V0}
                {HALT}
                """
            )
        )
        res = machine.run(30_000)
        assert res.halted and res.outputs == [341]
        assert res.violations == 0

    def test_diamond_m1_m2_isolation(self):
        machine = SapperMachine(diamond())
        machine.load(
            assemble(
                """
                .org 0x400
                    la   $t0, m1code
                    jr   $t0
                .org 0x2000
                m1code:
                    li   $t1, 0x21000      # M2 memory
                    li   $t2, 7
                    sw   $t2, 0($t1)       # blocked: M1 data -> M2 cell
                    li   $t3, 0x20000      # M1 memory
                    sw   $t2, 0($t3)       # allowed
                spin:
                    b    spin
                """
            )
        )
        machine.tag_region(0x2000, 0x2100, "M1")
        machine.tag_region(0x20000, 0x20100, "M1")
        machine.tag_region(0x21000, 0x21100, "M2")
        for _ in range(3000):
            machine.step()
        assert machine.read_word(0x21000) == 0, "M1 wrote into M2 memory"
        assert machine.read_word(0x20000) == 7
        assert machine.violations > 0

"""Tests for the formal-semantics interpreter (Figure 6)."""

from repro.lattice import diamond, two_level
from repro.sapper.analysis import analyze
from repro.sapper.parser import parse_program
from repro.sapper.semantics import Interpreter
from repro.sapper import samples


def interp(src: str, lattice=None) -> Interpreter:
    lat = lattice or two_level()
    return Interpreter(analyze(parse_program(src), lat), lat)


class TestBasicExecution:
    def test_counter(self):
        it = interp(
            """
            reg[7:0] n;
            state s : L = { n := n + 1; goto s; }
            """
        )
        it.run(5)
        assert it.sigma["n"] == 5
        assert it.delta == 5

    def test_wraparound(self):
        it = interp(
            """
            reg[3:0] n;
            state s : L = { n := n + 1; goto s; }
            """
        )
        it.run(20)
        assert it.sigma["n"] == 4  # 20 mod 16

    def test_wire_resets_each_cycle(self):
        it = interp(
            """
            wire[7:0] w; reg[7:0] r; reg[7:0] snap;
            state s : L = {
                snap := w;       // reads the reset value 0
                w := 42;
                r := w;
                goto s;
            }
            """
        )
        it.run(2)
        assert it.sigma["snap"] == 0
        assert it.sigma["r"] == 42

    def test_blocking_read_after_write(self):
        it = interp(
            """
            reg[7:0] a; reg[7:0] b;
            state s : L = { a := 7; b := a + 1; goto s; }
            """
        )
        it.run(1)
        assert it.sigma["b"] == 8

    def test_if_else(self):
        it = interp(
            """
            reg[7:0] n; reg[7:0] parity;
            state s : L = {
                if (n % 2 == 0) { parity := 0; } else { parity := 1; }
                n := n + 1;
                goto s;
            }
            """
        )
        it.run(3)  # after 3 cycles, parity reflects n=2 (even)
        assert it.sigma["parity"] == 0

    def test_array_blocking_semantics(self):
        it = interp(
            """
            mem[7:0] arr[8]; reg[7:0] v;
            state s : L = { arr[3] := 9; v := arr[3]; goto s; }
            """
        )
        it.run(1)
        assert it.sigma["v"] == 9
        assert it.arrays["arr"][3] == 9

    def test_inputs_and_outputs(self):
        it = interp(
            """
            input[7:0] x : L; output[7:0] y : L;
            state s : L = { y := x + 1; goto s; }
            """
        )
        outs = it.run_cycle({"x": 10})
        assert outs["y"] == (11, "L")

    def test_division_by_zero_convention(self):
        # all-ones at the dividend's width; remainder returns the dividend
        it = interp(
            """
            reg[7:0] x; reg[7:0] q; reg[7:0] r;
            state s : L = { x := 5; q := x / 0; r := x % 0; goto s; }
            """
        )
        it.run(1)
        assert it.sigma["q"] == 0xFF
        assert it.sigma["r"] == 5

    def test_signed_ops(self):
        it = interp(
            """
            reg[7:0] x; reg[7:0] a; reg b; reg[7:0] sh;
            state s : L = {
                x := 4;
                a := 0 - x;
                b := lts(a, x);
                sh := asr(a, 1);
                goto s;
            }
            """
        )
        it.run(1)
        assert it.sigma["a"] == 0xFC       # -4 in 8 bits
        assert it.sigma["b"] == 1          # -4 < 4 signed
        assert it.sigma["sh"] == 0xFE      # -4 >> 1 == -2


class TestStateMachine:
    def test_goto_switches_state(self):
        it = interp(
            """
            reg[7:0] master_count; reg[7:0] other_count;
            state a : L = { m aster := 0; goto b; }
            state b : L = { other_count := other_count + 1; goto a; }
            """.replace("m aster := 0", "master_count := master_count + 1")
        )
        it.run(4)
        assert it.sigma["master_count"] == 2
        assert it.sigma["other_count"] == 2

    def test_fall_runs_child(self):
        it = interp(
            """
            reg[7:0] parent_c; reg[7:0] child_c;
            state top : L = {
                let state kid = { child_c := child_c + 1; goto kid; } in
                parent_c := parent_c + 1;
                fall;
            }
            """
        )
        it.run(3)
        assert it.sigma["parent_c"] == 3
        assert it.sigma["child_c"] == 3

    def test_tdma_schedule(self):
        lat = two_level()
        it = Interpreter(analyze(parse_program(samples.TDMA), lat), lat)
        # Master arms the timer on cycle 0, then Slave+Pipeline run for
        # 100 cycles, then one Master cycle again.
        it.run_cycle({"hi_in": (1, "H"), "lo_in": 0})
        assert it.rho["_root"] == "Slave"
        # timer decrements on cycles 1..100; cycle 101 sees 0 and gotos Master
        for _ in range(101):
            it.run_cycle({"hi_in": (1, "H"), "lo_in": 0})
        assert it.rho["_root"] == "Master"
        # the pipeline accumulated under the high tag
        assert it.sigma["acc"] == 100
        assert it.theta_reg["acc"] == "H"

    def test_rho_persists_across_preemption(self):
        src = """
        reg[3:0] t;
        state m : L = { t := 2; goto s; }
        state s : L = {
            let state p1 = { goto p2; } in
            let state p2 = { goto p2; } in
            if (t == 0) { goto m; } else { t := t - 1; fall; }
        }
        """
        it = interp(src)
        it.run(2)  # m then s (falls into p1, which gotos p2)
        assert it.rho["s"] == "p2"
        it.run(2)  # timer expires -> m; fall map still remembers p2
        assert it.rho["s"] == "p2"


class TestEnforcement:
    def test_enforced_assign_blocks_high_data(self):
        it = interp(
            """
            reg[7:0] lo : L; input[7:0] hi : H;
            state s : L = { lo := hi; goto s; }
            """
        )
        it.run_cycle({"hi": 99})
        assert it.sigma["lo"] == 0  # write suppressed
        assert len(it.violations) == 1
        assert it.violations[0].kind == "assign"

    def test_enforced_assign_allows_low_data(self):
        it = interp(
            """
            reg[7:0] lo : L; input[7:0] x : L;
            state s : L = { lo := x; goto s; }
            """
        )
        it.run_cycle({"x": 7})
        assert it.sigma["lo"] == 7
        assert not it.violations

    def test_high_to_high_allowed(self):
        it = interp(
            """
            reg[7:0] sec : H; input[7:0] hi : H;
            state s : L = { sec := hi; goto s; }
            """
        )
        it.run_cycle({"hi": 3})
        assert it.sigma["sec"] == 3
        assert not it.violations

    def test_implicit_flow_blocked(self):
        # branching on high data must not write low registers
        it = interp(
            """
            reg[7:0] lo : L; input h : H;
            state s : L = {
                if (h) { lo := 1; } else { lo := 2; }
                goto s;
            }
            """
        )
        it.run_cycle({"h": 1})
        assert it.sigma["lo"] == 0
        assert it.violations

    def test_implicit_flow_tracked_for_dynamic(self):
        it = interp(
            """
            reg[7:0] d; input h : H;
            state s : L = {
                if (h) { d := 1; }
                goto s;
            }
            """
        )
        it.run_cycle({"h": 0})  # branch NOT taken; tag still rises (Fcd)
        assert it.theta_reg["d"] == "H"
        assert it.sigma["d"] == 0

    def test_otherwise_handler_runs_on_violation(self):
        it = interp(
            """
            reg[7:0] lo : L; reg[7:0] fallback : L; input[7:0] hi : H;
            state s : L = {
                lo := hi otherwise fallback := 1;
                goto s;
            }
            """
        )
        it.run_cycle({"hi": 42})
        assert it.sigma["lo"] == 0
        assert it.sigma["fallback"] == 1

    def test_otherwise_not_taken_when_ok(self):
        it = interp(
            """
            reg[7:0] lo : L; reg[7:0] fallback : L; input[7:0] x : L;
            state s : L = {
                lo := x otherwise fallback := 1;
                goto s;
            }
            """
        )
        it.run_cycle({"x": 42})
        assert it.sigma["lo"] == 42
        assert it.sigma["fallback"] == 0

    def test_nested_otherwise(self):
        it = interp(
            """
            reg[7:0] a : L; reg[7:0] b : L; reg[7:0] c : L; input[7:0] hi : H;
            state s : L = {
                a := hi otherwise b := hi otherwise c := 5;
                goto s;
            }
            """
        )
        it.run_cycle({"hi": 1})
        assert (it.sigma["a"], it.sigma["b"], it.sigma["c"]) == (0, 0, 5)

    def test_enforced_goto_blocked_from_high_context(self):
        it = interp(
            """
            input h : H;
            state a : L = {
                if (h) { goto b; } else { goto a; }
            }
            state b : L = { goto b; }
            """
        )
        it.run_cycle({"h": 1})
        # transition suppressed: rho stays on a
        assert it.rho["_root"] == "a"
        assert it.violations

    def test_enforced_array(self):
        it = interp(
            """
            mem[7:0] buf[8] : L; input[7:0] hi : H; reg ignore;
            state s : L = {
                buf[0] := hi;
                buf[1] := 7;
                goto s;
            }
            """
        )
        it.run_cycle({"hi": 9})
        assert 0 not in it.arrays["buf"]  # blocked
        assert it.arrays["buf"][1] == 7


class TestSetTag:
    def test_settag_upgrade_keeps_data(self):
        it = interp(
            """
            reg[7:0] r : L;
            state s : L = { r := 5; setTag(r, H); goto s; }
            """
        )
        it.run(1)
        assert it.theta_reg["r"] == "H"
        assert it.sigma["r"] == 5

    def test_settag_downgrade_zeroes_data(self):
        it = interp(
            """
            reg[7:0] r : H; input[7:0] hi : H; reg phase;
            state s : L = {
                if (phase == 0) { r := hi; } else { setTag(r, L); }
                phase := 1;
                goto s;
            }
            """
        )
        it.run_cycle({"hi": 77})
        assert it.sigma["r"] == 77
        it.run_cycle({"hi": 77})
        assert it.theta_reg["r"] == "L"
        assert it.sigma["r"] == 0  # zeroed on downgrade

    def test_settag_blocked_from_high_context(self):
        # a high context may not downgrade low data (information leak)
        it = interp(
            """
            reg[7:0] r : H; input h : H;
            state s : L = {
                if (h) { setTag(r, L); }
                goto s;
            }
            """
        )
        it.run_cycle({"h": 1})
        assert it.theta_reg["r"] == "H"
        assert it.violations

    def test_settag_array_cell(self):
        it = interp(
            """
            mem[7:0] buf[8] : H; input[7:0] hi : H; reg phase;
            state s : L = {
                if (phase == 0) { buf[2] := hi; } else { setTag(buf[2], L); }
                phase := 1;
                goto s;
            }
            """
        )
        it.run_cycle({"hi": 12})
        assert it.arrays["buf"][2] == 12
        it.run_cycle({"hi": 12})
        assert it.arr_tag("buf", 2) == "L"
        assert it.arrays["buf"][2] == 0

    def test_settag_state(self):
        it = interp(
            """
            reg x;
            state a : L = {
                let state kid = { goto kid; } in
                setTag(kid, H);
                fall;
            }
            """
        )
        it.run(1)
        assert it.theta_state["kid"] == "H"


class TestDiamondLattice:
    def test_incomparable_levels_isolated(self):
        lat = diamond()
        it = interp(
            """
            reg[7:0] m1 : M1; input[7:0] in2 : M2;
            state s : L = { m1 := in2; goto s; }
            """,
            lat,
        )
        it.run_cycle({"in2": 5})
        assert it.sigma["m1"] == 0  # M2 data cannot flow to M1
        assert it.violations

    def test_join_to_top(self):
        lat = diamond()
        it = interp(
            """
            reg[7:0] d; input[7:0] in1 : M1; input[7:0] in2 : M2;
            state s : L = { d := in1 + in2; goto s; }
            """,
            lat,
        )
        it.run_cycle({"in1": 2, "in2": 3})
        assert it.sigma["d"] == 5
        assert it.theta_reg["d"] == "H"

"""The async toolchain server: protocol, coalescing, transports, CLI.

Four layers are pinned here:

* **Protocol** -- every op answers a well-formed NDJSON response;
  malformed JSON, unknown ops, missing/ill-typed fields, and internal
  bugs all come back as ``{"ok": false, "error": ...}`` with an
  actionable message, never a dropped connection or a traceback.
* **Single-flight coalescing** -- N concurrent requests for the same
  structural key cost exactly one build.  Proven twice: structurally
  (a gated build stub counts invocations while requests pile up) and
  end-to-end (the toolchain's own ``miss:compile`` counter stays at 1).
* **Transports** -- a real TCP round trip on an ephemeral port with
  concurrent clients, and the stdio loop.
* **CLI error paths** -- occupied port, unusable store directory, and
  bad flag values exit with hints, not stack traces.
"""

import asyncio
import io
import json
import socket
import threading

import pytest

from repro.cli import main
from repro.sapper import samples
from repro.server import LATTICES, ReproServer, proc_powerset
from repro.store import ArtifactStore
from repro.toolchain import Toolchain

COUNTER = """
// a trusted accumulator: lo_out follows acc within the cycle
reg[7:0] acc : L;
input[3:0] lo_in : L;
output[7:0] lo_out : L;

state main : L = {
    acc := acc + lo_in;
    lo_out := acc;
    goto main;
}
"""


def run(coro):
    return asyncio.run(coro)


def ask(server: ReproServer, req: dict) -> dict:
    return run(server.handle_request(req))


@pytest.fixture
def server():
    return ReproServer(max_workers=2)


class TestProtocol:
    def test_ping(self, server):
        resp = ask(server, {"id": 7, "op": "ping"})
        assert resp == {"id": 7, "ok": True, "result": {"pong": True}}

    def test_malformed_json_is_an_error_response(self, server):
        resp = run(server.handle_line("{not json"))
        assert resp["ok"] is False and resp["id"] is None
        assert "malformed request JSON" in resp["error"]
        assert server.counters["errors"] == 1

    def test_non_object_request(self, server):
        resp = run(server.handle_line("[1, 2, 3]"))
        assert resp["ok"] is False
        assert "JSON object" in resp["error"]

    def test_unknown_op_lists_known_ops(self, server):
        resp = ask(server, {"id": 1, "op": "frobnicate"})
        assert resp["ok"] is False
        assert "unknown op 'frobnicate'" in resp["error"]
        for op in ("compile", "simulate", "synth", "verify", "stats"):
            assert op in resp["error"]

    def test_missing_source(self, server):
        resp = ask(server, {"id": 1, "op": "compile"})
        assert resp["ok"] is False
        assert "'source'" in resp["error"]

    def test_unknown_lattice(self, server):
        resp = ask(server, {"id": 1, "op": "compile", "source": COUNTER,
                            "lattice": "mobius"})
        assert resp["ok"] is False
        assert "unknown lattice 'mobius'" in resp["error"]
        assert "two" in resp["error"] and "powerset" in resp["error"]

    def test_ill_typed_fields(self, server):
        for req in (
            {"op": "compile", "source": 42},
            {"op": "compile", "source": COUNTER, "secure": "yes"},
            {"op": "simulate", "source": COUNTER, "cycles": "many"},
            {"op": "simulate", "source": COUNTER, "cycles": True},
            {"op": "simulate", "source": COUNTER, "cycles": 0},
            {"op": "simulate", "source": COUNTER, "inputs": [1]},
            {"op": "simulate", "source": COUNTER, "inputs": {"lo_in": "x"}},
        ):
            resp = ask(server, req)
            assert resp["ok"] is False, req
            assert "internal error" not in resp["error"], resp

    def test_compile_error_is_actionable_not_internal(self, server):
        resp = ask(server, {"id": 1, "op": "compile", "source": "module ???"})
        assert resp["ok"] is False
        assert "internal error" not in resp["error"]

    def test_source_path_missing_file(self, server):
        resp = ask(server, {"id": 1, "op": "compile",
                            "source_path": "/no/such/file.sapper"})
        assert resp["ok"] is False
        assert "source_path" in resp["error"]

    def test_source_path_round_trip(self, server, tmp_path):
        path = tmp_path / "c.sapper"
        path.write_text(COUNTER)
        resp = ask(server, {"id": 1, "op": "compile",
                            "source_path": str(path), "name": "counter"})
        assert resp["ok"], resp
        assert resp["result"]["name"] == "counter"

    def test_internal_bug_is_contained(self, server, monkeypatch):
        async def boom(self, req):
            raise RuntimeError("wires crossed")

        monkeypatch.setitem(ReproServer._OPS, "ping", boom)
        resp = ask(server, {"id": 9, "op": "ping"})
        assert resp == {"id": 9, "ok": False,
                        "error": "internal error: RuntimeError('wires crossed')"}

    def test_compile_reports_module_shape(self, server):
        resp = ask(server, {"id": 1, "op": "compile", "source": COUNTER,
                            "name": "counter"})
        assert resp["ok"], resp
        result = resp["result"]
        assert result["signals"] > 0 and result["regs"] >= 1  # at least acc
        assert "lo_in" in result["inputs"]
        assert "lo_out" in result["outputs"]
        assert len(result["key"]) == 64

    def test_simulate_scalar(self, server):
        resp = ask(server, {"id": 1, "op": "simulate", "source": COUNTER,
                            "name": "counter", "cycles": 5,
                            "inputs": {"lo_in": 2}})
        assert resp["ok"], resp
        result = resp["result"]
        assert result["cycles"] == 5
        assert result["outputs"]["lo_out"] == 10  # 5 accumulations of 2
        assert result["violations"] == 0

    def test_simulate_per_lane_inputs(self, server):
        resp = ask(server, {"id": 1, "op": "simulate", "source": COUNTER,
                            "name": "counter", "cycles": 5, "lanes": 3,
                            "inputs": {"lo_in": [1, 2, 3]}})
        assert resp["ok"], resp
        result = resp["result"]
        assert result["lanes"] == 3
        assert [out["lo_out"] for out in result["outputs"]] == [5, 10, 15]
        assert result["violations"] == [0, 0, 0]

    def test_simulate_lane_length_mismatch(self, server):
        resp = ask(server, {"op": "simulate", "source": COUNTER, "lanes": 2,
                            "inputs": {"lo_in": [1, 2, 3]}})
        assert resp["ok"] is False
        assert "3 lanes" in resp["error"] and "'lanes' is 2" in resp["error"]

    def test_simulate_tdma_flags_violation(self, server):
        resp = ask(server, {"op": "simulate", "source": samples.TDMA,
                            "name": "tdma", "cycles": 8,
                            "inputs": {"hi_in": 3, "lo_in": 1}})
        assert resp["ok"], resp
        assert resp["result"]["violations"] >= 0  # shape only; policy below

    def test_verify_equivalent(self, server):
        resp = ask(server, {"op": "verify", "source": COUNTER, "cycles": 16})
        assert resp["ok"], resp
        assert resp["result"] == {"equivalent": True, "cycles": 16}

    def test_synth_reports_cells(self, server):
        resp = ask(server, {"op": "synth", "source": COUNTER, "name": "counter"})
        assert resp["ok"], resp
        cells = resp["result"]["cells"]
        assert cells["dff"] > 0
        assert set(resp["result"]["summary"])

    def test_verilog_round_trip(self, server):
        resp = ask(server, {"op": "verilog", "source": COUNTER, "name": "counter"})
        assert resp["ok"], resp
        assert "module counter" in resp["result"]["verilog"]

    def test_stats_exposes_all_tiers(self, tmp_path):
        server = ReproServer(
            toolchain=Toolchain(store=ArtifactStore(tmp_path)), max_workers=2
        )
        ask(server, {"op": "compile", "source": COUNTER, "name": "counter"})
        resp = ask(server, {"op": "stats"})
        result = resp["result"]
        assert result["server"]["requests"] == 2
        assert result["toolchain"].get("miss:compile") == 1
        assert result["cache"].get("compile") == 1
        assert result["store"]["writes"] >= 1

    def test_shutdown_sets_stopping(self, server):
        resp = ask(server, {"op": "shutdown"})
        assert resp == {"id": None, "ok": True, "result": {"stopping": True}}
        assert server._stopping.is_set()

    def test_powerset_lattice_served(self, server):
        resp = ask(server, {"op": "compile", "source": COUNTER,
                            "lattice": "powerset", "name": "counter"})
        assert resp["ok"], resp

    def test_proc_powerset_has_processor_bottom(self):
        lat = proc_powerset()
        assert lat.bottom == "L"
        assert lat.leq("L", "{u,k}")
        assert set(LATTICES) == {"two", "diamond", "powerset"}


class GatedServer(ReproServer):
    """Build stub with a gate: requests pile up behind ``release`` so
    coalescing is observable deterministically, and every *actual* build
    invocation is recorded."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.release = threading.Event()
        self.build_calls: list[tuple] = []
        self._calls_lock = threading.Lock()

    def _build_design(self, source, lattice_name, secure, name):
        with self._calls_lock:
            self.build_calls.append((source, lattice_name, secure, name))
        assert self.release.wait(timeout=30), "gate never released"
        return super()._build_design(source, lattice_name, secure, name)


class TestCoalescing:
    def test_identical_requests_cost_one_build(self):
        async def scenario():
            server = GatedServer(max_workers=2)
            req = {"op": "compile", "source": COUNTER, "name": "counter"}
            tasks = [asyncio.create_task(server.handle_request(dict(req, id=i)))
                     for i in range(8)]
            # let every task reach the single-flight layer before opening
            # the gate, so each either started the build or coalesced
            while len(server._inflight) < 1 or server.counters["coalesced"] < 7:
                await asyncio.sleep(0.005)
            server.release.set()
            resps = await asyncio.gather(*tasks)
            return server, resps

        server, resps = run(scenario())
        assert all(r["ok"] for r in resps), resps
        assert len(server.build_calls) == 1
        assert server.counters["coalesced"] == 7
        assert server.tc.counter_snapshot().get("coalesced") == 7
        keys = {r["result"]["key"] for r in resps}
        assert len(keys) == 1  # everyone got the same artifact

    def test_distinct_keys_all_progress_under_bounded_pool(self):
        """More distinct designs than worker threads: all complete, no
        deadlock, and none coalesce onto each other."""

        async def scenario():
            server = GatedServer(max_workers=2)
            server.release.set()  # no gating: just bounded-pool progress
            sources = [f"// variant {i}\n" + COUNTER for i in range(6)]
            tasks = [
                asyncio.create_task(server.handle_request(
                    {"id": i, "op": "compile", "source": src, "name": f"c{i}"}))
                for i, src in enumerate(sources)
            ]
            return server, await asyncio.wait_for(asyncio.gather(*tasks), timeout=60)

        server, resps = run(scenario())
        assert all(r["ok"] for r in resps), resps
        assert len(server.build_calls) == 6
        assert server.counters["coalesced"] == 0
        assert len({r["result"]["key"] for r in resps}) == 6

    def test_single_flight_proven_by_toolchain_counters(self):
        """End to end, without stubs: 5 concurrent identical compiles
        reach the real toolchain exactly once."""

        async def scenario():
            server = ReproServer(max_workers=4)
            req = {"op": "compile", "source": COUNTER, "name": "counter"}
            resps = await asyncio.gather(
                *[server.handle_request(dict(req, id=i)) for i in range(5)]
            )
            return server, resps

        server, resps = run(scenario())
        assert all(r["ok"] for r in resps)
        counters = server.tc.counter_snapshot()
        assert counters.get("miss:compile") == 1, counters
        assert counters.get("hit:compile") is None
        assert server.counters["coalesced"] == 4

    def test_sequential_requests_hit_the_memory_cache(self, server):
        req = {"op": "compile", "source": COUNTER, "name": "counter"}
        ask(server, dict(req, id=1))
        ask(server, dict(req, id=2))
        counters = server.tc.counter_snapshot()
        assert counters.get("miss:compile") == 1
        assert counters.get("hit:compile") == 1
        assert server.counters["coalesced"] == 0  # not in flight anymore

    def test_warm_family_prebuilds_through_single_flight(self, tmp_path):
        async def scenario():
            server = ReproServer(
                toolchain=Toolchain(store=ArtifactStore(tmp_path)), max_workers=2
            )
            warmed = await server.warm(("two",))
            # a client asking for the warmed design afterwards hits memory
            from repro.proc.design import generate_design

            source = generate_design(LATTICES["two"]())
            resp = await server.handle_request(
                {"op": "compile", "source": source, "name": "sapper_mips"}
            )
            return server, warmed, resp

        server, warmed, resp = run(scenario())
        assert warmed == 1 and server.counters["warmed"] == 1
        assert resp["ok"]
        counters = server.tc.counter_snapshot()
        assert counters.get("miss:compile") == 1
        assert counters.get("hit:compile") == 1


def _tcp_ask(host: str, port: int, requests: list[dict]) -> list[dict]:
    with socket.create_connection((host, port), timeout=30) as sock:
        fh = sock.makefile("rwb")
        out = []
        for req in requests:
            fh.write((json.dumps(req) + "\n").encode())
            fh.flush()
            out.append(json.loads(fh.readline()))
        return out


class TestTcpTransport:
    def test_concurrent_clients_over_tcp(self):
        async def scenario():
            server = ReproServer(max_workers=2)
            listener = await server.start_tcp("127.0.0.1", 0)
            host, port = listener.sockets[0].getsockname()[:2]
            loop = asyncio.get_running_loop()

            def client(i):
                return _tcp_ask(host, port, [
                    {"id": i, "op": "compile", "source": COUNTER, "name": "counter"},
                    {"id": 100 + i, "op": "ping"},
                ])

            async with listener:
                results = await asyncio.gather(
                    *[loop.run_in_executor(None, client, i) for i in range(4)]
                )
                stats = await server.handle_request({"op": "stats"})
            return server, results, stats

        server, results, stats = run(scenario())
        for i, (compile_resp, ping_resp) in enumerate(results):
            assert compile_resp["ok"] and compile_resp["id"] == i
            assert ping_resp["result"] == {"pong": True}
        assert server.counters["connections"] == 4
        assert server.tc.counter_snapshot().get("miss:compile") == 1
        assert stats["result"]["server"]["requests"] >= 9

    def test_oversized_line_is_rejected_not_fatal(self):
        async def scenario():
            server = ReproServer(max_workers=1)
            listener = await server.start_tcp("127.0.0.1", 0)
            host, port = listener.sockets[0].getsockname()[:2]
            loop = asyncio.get_running_loop()

            def client():
                from repro.server import MAX_LINE

                with socket.create_connection((host, port), timeout=30) as sock:
                    fh = sock.makefile("rwb")
                    fh.write(b'{"pad": "' + b"x" * (MAX_LINE + 16) + b'"}\n')
                    fh.flush()
                    return json.loads(fh.readline())

            async with listener:
                return await loop.run_in_executor(None, client)

        resp = run(scenario())
        assert resp["ok"] is False
        assert "exceeds" in resp["error"]


class TestStdioTransport:
    def test_stdio_round_trip(self):
        requests = "\n".join([
            json.dumps({"id": 1, "op": "ping"}),
            "",  # blank lines are skipped
            json.dumps({"id": 2, "op": "compile", "source": COUNTER,
                        "name": "counter"}),
            "this is not json",
            json.dumps({"id": 3, "op": "shutdown"}),
        ]) + "\n"
        stdout = io.StringIO()
        server = ReproServer(max_workers=1)
        run(server.run_stdio(stdin=io.StringIO(requests), stdout=stdout))
        lines = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert [r["id"] for r in lines] == [1, 2, None, 3]
        assert lines[1]["ok"] and lines[1]["result"]["name"] == "counter"
        assert "malformed request JSON" in lines[2]["error"]


class TestCliErrorPaths:
    def test_occupied_port_exits_with_hint(self):
        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            with pytest.raises(SystemExit) as exc:
                main(["serve", "--port", str(port), "--no-warm"])
        message = str(exc.value)
        assert f"cannot listen on 127.0.0.1:{port}" in message
        assert "--port" in message and "--stdio" in message
        assert "Traceback" not in message

    def test_unusable_store_dir_exits_with_hint(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("in the way")
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--stdio", "--store", str(blocker / "store")])
        message = str(exc.value)
        assert "not usable" in message
        assert "writable directory" in message

    def test_store_permission_error_exits_with_hint(self, tmp_path, monkeypatch):
        # running as root, mode bits are ignored; simulate the probe failing
        def deny(*args, **kwargs):
            raise PermissionError(13, "Permission denied")

        monkeypatch.setattr("repro.store.tempfile.mkstemp", deny)
        with pytest.raises(SystemExit) as exc:
            main(["compile", "x.sapper", "--store", str(tmp_path / "denied")])
        assert "permissions" in str(exc.value)

    def test_bad_worker_count_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--workers", "0"])
        assert exc.value.code == 2  # argparse usage error, pre-server
        assert ">= 1" in capsys.readouterr().err

    def test_serve_stdio_end_to_end(self, tmp_path, capsys, monkeypatch):
        requests = json.dumps({"id": 1, "op": "ping"}) + "\n" + \
            json.dumps({"id": 2, "op": "shutdown"}) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        rc = main(["serve", "--stdio", "--no-warm",
                   "--store", str(tmp_path / "store")])
        assert rc == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines[0] == {"id": 1, "ok": True, "result": {"pong": True}}
        assert lines[1]["result"] == {"stopping": True}


WORKLOAD_ASM = """
.org 0x400
    li   $t9, 0x40000000
    li   $t1, {k}
    sw   $t1, 0($t9)
    li   $t9, 0x40000004
    sw   $zero, 0($t9)
"""


class TestFleetOp:
    """The ``fleet`` op: a workload suite sharded across real worker
    processes over the server's artifact store."""

    def test_fleet_runs_asm_suite(self, tmp_path):
        srv = ReproServer(
            toolchain=Toolchain(store=ArtifactStore(tmp_path / "store")),
            max_workers=2,
        )
        workloads = [
            {"asm": WORKLOAD_ASM.format(k=k), "max_cycles": 600, "name": f"w{k}"}
            for k in range(3)
        ]
        resp = ask(srv, {"id": 1, "op": "fleet", "workloads": workloads,
                         "shards": 2, "lanes_per_worker": 2})
        assert resp["ok"], resp
        result = resp["result"]
        assert result["shards"] == 2
        assert [r["name"] for r in result["results"]] == ["w0", "w1", "w2"]
        assert [r["outputs"] for r in result["results"]] == [[0], [1], [2]]
        assert all(r["halted"] for r in result["results"])
        assert all(r["violations"] == 0 for r in result["results"])
        merged = result["fleet"]
        assert merged["shards"] == 2 and not merged["degraded"]

    def test_fleet_named_workload_budget_capped(self, tmp_path):
        srv = ReproServer(
            toolchain=Toolchain(store=ArtifactStore(tmp_path / "store")),
            max_workers=2,
        )
        resp = ask(srv, {"id": 2, "op": "fleet", "workloads": ["specrand"],
                         "max_cycles": 40, "shards": 1})
        assert resp["ok"], resp
        (res,) = resp["result"]["results"]
        assert res["name"] == "specrand"
        assert res["cycles"] == 40 and not res["halted"]

    def test_fleet_validation_errors(self, server):
        for req in (
            {"op": "fleet"},
            {"op": "fleet", "workloads": []},
            {"op": "fleet", "workloads": [42]},
            {"op": "fleet", "workloads": ["not-a-workload"]},
            {"op": "fleet", "workloads": [{"no_asm": True}]},
            {"op": "fleet", "workloads": [{"asm": "x"}], "shards": "many"},
        ):
            resp = ask(server, req)
            assert resp["ok"] is False, req
            assert "internal error" not in resp["error"], resp

    def test_fleet_unknown_workload_lists_known(self, server):
        resp = ask(server, {"op": "fleet", "workloads": ["frob"]})
        assert resp["ok"] is False
        assert "specrand" in resp["error"] and "sha" in resp["error"]

    def test_fleet_assembly_error_is_actionable(self, server):
        resp = ask(server, {"op": "fleet",
                            "workloads": [{"asm": "not an instruction"}]})
        assert resp["ok"] is False
        assert "assembly failed" in resp["error"]

"""Differential property tests for the SWAR primitive library.

Every primitive in :mod:`repro.hdl.swar` is checked against the scalar
reference semantics of the simulator (mask-and-shift on per-lane
values) across the full supported parameter space: widths 2..33
(boundaries inclusive), lane counts 1..64, random and adversarial
operands, and slot pitches at and above the minimum guard band.  Each
check also asserts the *canonical form* invariant -- no result bit
outside any slot's value region -- which is exactly the guard-bit
non-leakage property: a carry, borrow, or shift in one lane must never
disturb its neighbours.

Both layout-conversion code paths are exercised: the one-multiply
gather/scatter (``lanes <= pitch - 1``) and the binary-doubling ladder
(``lanes > pitch - 1``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import swar as S
from repro.hdl.swar import SWAR_MAX_WIDTH, SwarLayout, get_layout

MASK = lambda w: (1 << w) - 1  # noqa: E731


def signed(v: int, w: int) -> int:
    return v - (1 << w) if (v >> (w - 1)) & 1 else v


def assert_canonical(lay: SwarLayout, word: int, width: int) -> None:
    """No bit outside the per-slot value regions (guard non-leakage)."""
    assert word & ~lay.vmask(width) == 0, (
        f"guard band polluted: pitch={lay.pitch} lanes={lay.lanes} width={width}"
    )


def operand_lists(w: int, lanes: int):
    """Per-lane operands biased toward carry/borrow boundary values."""
    boundary = st.sampled_from([0, 1, MASK(w), MASK(w) - 1, 1 << (w - 1)])
    return st.lists(
        st.integers(0, MASK(w)) | boundary, min_size=lanes, max_size=lanes
    )


@st.composite
def cases(draw, min_width: int = 2, max_width: int = SWAR_MAX_WIDTH):
    w = draw(st.integers(min_width, max_width))
    lanes = draw(st.integers(1, 64))
    # pitch w+1 is the minimum guard band; larger pitches flip the
    # layout between the multiply and doubling conversion paths
    pitch = w + draw(st.sampled_from([1, 1, 2, 33]))
    lay = get_layout(pitch, lanes)
    xs = draw(operand_lists(w, lanes))
    ys = draw(operand_lists(w, lanes))
    return lay, w, xs, ys


class TestArithmetic:
    @given(cases())
    def test_add_sub_neg(self, case):
        lay, w, xs, ys = case
        x, y = lay.pack(xs, w), lay.pack(ys, w)
        for got_word, want in [
            (S.swar_add(lay, x, y, w), [(a + b) & MASK(w) for a, b in zip(xs, ys)]),
            (S.swar_sub(lay, x, y, w), [(a - b) & MASK(w) for a, b in zip(xs, ys)]),
            (S.swar_neg(lay, x, w), [(-a) & MASK(w) for a in xs]),
        ]:
            assert_canonical(lay, got_word, w)
            assert lay.unpack(got_word, w) == want

    @given(cases())
    def test_bitwise(self, case):
        lay, w, xs, ys = case
        x, y = lay.pack(xs, w), lay.pack(ys, w)
        for got_word, want in [
            (S.swar_and(lay, x, y, w), [a & b for a, b in zip(xs, ys)]),
            (S.swar_or(lay, x, y, w), [a | b for a, b in zip(xs, ys)]),
            (S.swar_xor(lay, x, y, w), [a ^ b for a, b in zip(xs, ys)]),
            (S.swar_not(lay, x, w), [a ^ MASK(w) for a in xs]),
        ]:
            assert_canonical(lay, got_word, w)
            assert lay.unpack(got_word, w) == want


class TestShifts:
    @given(cases(), st.integers(0, SWAR_MAX_WIDTH + 2))
    def test_shl_shr(self, case, k):
        lay, w, xs, _ = case
        x = lay.pack(xs, w)
        got = S.swar_shl(lay, x, k, w)
        assert_canonical(lay, got, w)
        assert lay.unpack(got, w) == [(a << k) & MASK(w) if k < w else 0 for a in xs]
        got = S.swar_shr(lay, x, k, w)
        assert_canonical(lay, got, w)
        assert lay.unpack(got, w) == [a >> k if k < w else 0 for a in xs]

    @given(cases(), st.integers(0, SWAR_MAX_WIDTH + 2))
    def test_asr_matches_signed_shift(self, case, k):
        lay, w, xs, _ = case
        x = lay.pack(xs, w)
        got = S.swar_asr(lay, x, k, w)
        assert_canonical(lay, got, w)
        # the scalar simulator clamps arithmetic shifts at w - 1
        want = [(signed(a, w) >> min(k, w - 1)) & MASK(w) for a in xs]
        assert lay.unpack(got, w) == want


class TestWidthAdaptation:
    @given(cases(max_width=SWAR_MAX_WIDTH - 1), st.data())
    def test_zext_sext(self, case, data):
        lay, w, xs, _ = case
        w2 = data.draw(st.integers(w, lay.pitch - 1), label="w_to")
        x = lay.pack(xs, w)
        assert S.swar_zext(lay, x, w, w2) == x  # canonical form: identity
        got = S.swar_sext(lay, x, w, w2)
        assert_canonical(lay, got, w2)
        assert lay.unpack(got, w2) == [signed(a, w) & MASK(w2) for a in xs]

    @given(cases(), st.data())
    def test_slice(self, case, data):
        lay, w, xs, _ = case
        hi = data.draw(st.integers(0, w - 1), label="hi")
        lo = data.draw(st.integers(0, hi), label="lo")
        x = lay.pack(xs, w)
        got = S.swar_slice(lay, x, hi, lo)
        assert_canonical(lay, got, hi - lo + 1)
        assert lay.unpack(got, hi - lo + 1) == [
            (a >> lo) & MASK(hi - lo + 1) for a in xs
        ]

    @given(st.integers(1, 64), st.data())
    def test_cat(self, lanes, data):
        widths = data.draw(
            st.lists(st.integers(1, 16), min_size=1, max_size=3).filter(
                lambda ws: sum(ws) <= SWAR_MAX_WIDTH
            ),
            label="part widths",
        )
        total = sum(widths)
        lay = get_layout(total + 1, lanes)
        parts = [
            (data.draw(operand_lists(pw, lanes), label="part"), pw) for pw in widths
        ]
        packed = [(lay.pack(vals, pw), pw) for vals, pw in parts]
        got = S.swar_cat(lay, packed)
        assert_canonical(lay, got, total)
        want = []
        for lane in range(lanes):
            v = 0
            for vals, pw in parts:  # most significant first
                v = (v << pw) | vals[lane]
            want.append(v)
        assert lay.unpack(got, total) == want


CMP_CASES = [
    (S.swar_eq, lambda a, b, w: a == b),
    (S.swar_ne, lambda a, b, w: a != b),
    (S.swar_ult, lambda a, b, w: a < b),
    (S.swar_ule, lambda a, b, w: a <= b),
    (S.swar_ugt, lambda a, b, w: a > b),
    (S.swar_uge, lambda a, b, w: a >= b),
    (S.swar_slt, lambda a, b, w: signed(a, w) < signed(b, w)),
    (S.swar_sle, lambda a, b, w: signed(a, w) <= signed(b, w)),
    (S.swar_sgt, lambda a, b, w: signed(a, w) > signed(b, w)),
    (S.swar_sge, lambda a, b, w: signed(a, w) >= signed(b, w)),
]


class TestCompares:
    @given(cases())
    def test_all_compares_lane_contiguous(self, case):
        lay, w, xs, ys = case
        x, y = lay.pack(xs, w), lay.pack(ys, w)
        for fn, ref in CMP_CASES:
            got = fn(lay, x, y, w)
            want = sum(
                int(ref(a, b, w)) << lane for lane, (a, b) in enumerate(zip(xs, ys))
            )
            assert got == want, fn.__name__

    @given(cases())
    def test_equal_operands(self, case):
        lay, w, xs, _ = case
        x = lay.pack(xs, w)
        assert S.swar_eq(lay, x, x, w) == lay.lane_ones
        assert S.swar_ult(lay, x, x, w) == 0
        assert S.swar_ule(lay, x, x, w) == lay.lane_ones


class TestMux:
    @given(cases(), st.data())
    def test_mux_selects_per_lane(self, case, data):
        lay, w, xs, ys = case
        sel = data.draw(st.integers(0, lay.lane_ones), label="sel")
        x, y = lay.pack(xs, w), lay.pack(ys, w)
        got = S.swar_mux(lay, sel, x, y, w)
        assert_canonical(lay, got, w)
        assert lay.unpack(got, w) == [
            a if (sel >> lane) & 1 else b for lane, (a, b) in enumerate(zip(xs, ys))
        ]


class TestLayout:
    @given(st.integers(2, 67), st.integers(1, 64), st.data())
    def test_compress_spread_roundtrip(self, pitch, lanes, data):
        lay = get_layout(pitch, lanes)
        bits = data.draw(st.integers(0, lay.lane_ones), label="bits")
        spread = lay.spread(bits)
        assert spread == sum(
            ((bits >> lane) & 1) << (lane * pitch) for lane in range(lanes)
        )
        assert lay.compress(spread) == bits

    @given(cases())
    def test_pack_unpack_get_set(self, case):
        lay, w, xs, ys = case
        word = lay.pack(xs, w)
        assert lay.unpack(word, w) == xs
        assert_canonical(lay, word, w)
        for lane in range(lay.lanes):
            assert lay.get(word, lane, w) == xs[lane]
        for lane in range(lay.lanes):
            word = lay.set(word, lane, w, ys[lane])
        assert lay.unpack(word, w) == ys

    def test_layout_validation(self):
        import pytest

        with pytest.raises(ValueError, match="pitch"):
            SwarLayout(1, 4)
        with pytest.raises(ValueError, match="lane count"):
            SwarLayout(8, 0)
        with pytest.raises(ValueError, match="fit"):
            get_layout(8, 2).replicate(1, 8)


class TestGuardNonLeakage:
    """Adversarial neighbour patterns: a lane computing at the extreme
    (max value, deepest borrow, widest carry) must leave both neighbours
    bit-exact.  This is the property the guard band exists for."""

    @settings(max_examples=60)
    @given(st.integers(2, SWAR_MAX_WIDTH), st.integers(3, 16), st.integers(1, 14))
    def test_extreme_lane_leaves_neighbours_alone(self, w, lanes, victim):
        victim %= lanes
        lay = get_layout(w + 1, lanes)  # minimum guard band: worst case
        xs = [MASK(w) if i == victim else i % (MASK(w) + 1) for i in range(lanes)]
        ys = [MASK(w) if i == victim else (i * 7) % (MASK(w) + 1) for i in range(lanes)]
        x, y = lay.pack(xs, w), lay.pack(ys, w)
        for fn, ref in [
            (S.swar_add, lambda a, b: (a + b) & MASK(w)),
            (S.swar_sub, lambda a, b: (a - b) & MASK(w)),
        ]:
            got = lay.unpack(fn(lay, x, y, w), w)
            for lane in range(lanes):
                assert got[lane] == ref(xs[lane], ys[lane]), (
                    f"lane {lane} corrupted by lane {victim}'s overflow"
                )
        # borrow chain: 0 - max in the victim lane
        zs = [0 if i == victim else xs[i] for i in range(lanes)]
        got = lay.unpack(S.swar_sub(lay, lay.pack(zs, w), y, w), w)
        for lane in range(lanes):
            assert got[lane] == (zs[lane] - ys[lane]) & MASK(w)

"""Tests for the MIPS toolchain: ISA, softfloat, assembler, ISS."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.mips import assemble, decode, AsmError, Iss
from repro.mips import softfloat as sf
from repro.mips.isa import ENCODINGS, FIGURE7_INSTRUCTIONS, Instruction, encode


class TestIsaRoundtrip:
    @pytest.mark.parametrize("name", sorted(ENCODINGS))
    def test_encode_decode_roundtrip(self, name):
        fmt = ENCODINGS[name][0]
        inst = Instruction(
            name,
            rs=5 if fmt != "FB" else 0,
            rt=7 if fmt not in ("RI", "FB") else 0,
            rd=9 if fmt in ("R", "F", "FW") else 0,
            shamt=3 if name in ("sll", "srl", "sra") else 0,
            imm=0x1234 if fmt in ("I", "RI", "FB") else 0,
            target=0x12345 if fmt == "J" else 0,
        )
        word = encode(inst)
        back = decode(word)
        assert back is not None
        assert back.name == name

    def test_figure7_complete(self):
        for group, names in FIGURE7_INSTRUCTIONS.items():
            for name in names:
                assert name in ENCODINGS, f"{name} ({group}) missing"

    def test_nop_is_sll_zero(self):
        assert decode(0).name == "sll"

    def test_unknown_decodes_none(self):
        assert decode(0xFC000000) is None


def f32(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def approx_equal(bits: int, value: float, rel=2e-6):
    got = sf.to_python(bits)
    assert got == pytest.approx(value, rel=rel, abs=1e-30), f"{got} != {value}"


class TestSoftFloat:
    def test_exact_adds(self):
        assert sf.fadd(f32(1.0), f32(2.0)) == f32(3.0)
        assert sf.fadd(f32(1.5), f32(0.25)) == f32(1.75)
        assert sf.fadd(f32(1.0), f32(-1.0)) == 0

    def test_exact_muls(self):
        assert sf.fmul(f32(3.0), f32(4.0)) == f32(12.0)
        assert sf.fmul(f32(-2.0), f32(0.5)) == f32(-1.0)
        assert sf.fmul(f32(0.0), f32(1e30)) == 0

    def test_exact_divs(self):
        assert sf.fdiv(f32(12.0), f32(4.0)) == f32(3.0)
        assert sf.fdiv(f32(1.0), f32(2.0)) == f32(0.5)

    def test_div_by_zero_is_inf(self):
        assert sf.fdiv(f32(1.0), 0) == sf.inf(0)
        assert sf.fdiv(f32(-1.0), 0) == sf.inf(1)

    def test_overflow_saturates(self):
        big = f32(3e38)
        assert sf.fmul(big, big) == sf.inf(0)

    def test_underflow_flushes(self):
        tiny = f32(1e-38)
        assert sf.fmul(tiny, tiny) == 0

    def test_conversions(self):
        assert sf.cvt_s_w(5) == f32(5.0)
        assert sf.cvt_s_w((-7) & 0xFFFFFFFF) == f32(-7.0)
        assert sf.cvt_w_s(f32(42.9)) == 42
        assert sf.cvt_w_s(f32(-42.9)) == (-42) & 0xFFFFFFFF
        assert sf.cvt_w_s(f32(1e20)) == 0x7FFFFFFF

    def test_compares(self):
        assert sf.flt(f32(1.0), f32(2.0)) == 1
        assert sf.flt(f32(-1.0), f32(1.0)) == 1
        assert sf.fge(f32(2.0), f32(2.0)) == 1
        assert sf.fgt(f32(-1.0), f32(-2.0)) == 1
        assert sf.fle(f32(-5.0), f32(-5.0)) == 1

    @given(
        st.floats(
            min_value=-2.0**96, max_value=2.0**96, allow_nan=False, allow_subnormal=False, width=32
        ),
        st.floats(
            min_value=-2.0**96, max_value=2.0**96, allow_nan=False, allow_subnormal=False, width=32
        ),
    )
    def test_add_close_to_ieee(self, a, b):
        result = sf.to_python(sf.fadd(f32(a), f32(b)))
        expect = struct.unpack("<f", struct.pack("<f", a + b))[0]
        if abs(expect) < 1e-35:
            assert abs(result) < 1e-30 or abs(result - expect) <= abs(expect)
        else:
            assert (
                result == pytest.approx(expect, rel=4e-7)
                or abs(result - expect) <= abs(expect) * 4e-7 + 1e-30
            )

    @given(
        st.floats(
            min_value=-2.0**48, max_value=2.0**48, allow_nan=False, allow_subnormal=False, width=32
        ),
        st.floats(
            min_value=-2.0**48, max_value=2.0**48, allow_nan=False, allow_subnormal=False, width=32
        ),
    )
    def test_mul_close_to_ieee(self, a, b):
        result = sf.to_python(sf.fmul(f32(a), f32(b)))
        expect = a * b
        if abs(expect) < 1e-35:
            assert abs(result) < 1e-30
        else:
            assert result == pytest.approx(expect, rel=4e-7)

    @given(st.integers(-2**31, 2**31 - 1))
    def test_cvt_roundtrip_small(self, x):
        bits = sf.cvt_s_w(x & 0xFFFFFFFF)
        back = sf.cvt_w_s(bits)
        # truncation loses low bits only for |x| > 2^24
        if abs(x) < (1 << 24):
            assert back == x & 0xFFFFFFFF


class TestAssembler:
    def test_simple_program(self):
        exe = assemble(
            """
            .org 0x400
            start:
                li   $t0, 7
                li   $t1, 5
                add  $t2, $t0, $t1
            """
        )
        assert exe.symbols["start"] == 0x400
        assert len(exe.words) == 5  # two li pairs + add

    def test_branch_offsets(self):
        exe = assemble(
            """
            .org 0x400
            loop:
                addiu $t0, $t0, 1
                bne   $t0, $t1, loop
            """
        )
        word = exe.words[(0x404) >> 2]
        inst = decode(word)
        assert inst.name == "bne"
        assert inst.simm == -2

    def test_data_directives(self):
        exe = assemble(
            """
            .org 0x1000
            table: .word 1, 2, 0x30
            bytes: .byte 1, 2, 3, 4
            text:  .asciiz "hi"
            """
        )
        assert exe.words[0x1000 >> 2] == 1
        assert exe.words[0x1008 >> 2] == 0x30
        assert exe.words[0x100C >> 2] == 0x04030201  # little-endian
        assert exe.words[0x1010 >> 2] & 0xFFFFFF == 0x006968  # "hi\0"

    def test_float_directive(self):
        exe = assemble(".org 0x100\nf: .float 1.5")
        assert exe.words[0x100 >> 2] == f32(1.5)

    def test_hi_lo_relocs(self):
        exe = assemble(
            """
            .org 0x400
            la $t0, data
            lw $t1, %lo(data)($t0)
            .org 0x12340
            data: .word 99
            """
        )
        assert exe.symbols["data"] == 0x12340

    def test_mem_operand(self):
        exe = assemble(".org 0\nlw $t0, 8($sp)")
        inst = decode(exe.words[0])
        assert (inst.name, inst.rs, inst.simm) == ("lw", 29, 8)

    def test_unknown_instruction(self):
        with pytest.raises(AsmError):
            assemble("frobnicate $t0, $t1")

    def test_unknown_register(self):
        with pytest.raises(AsmError):
            assemble("add $t0, $bogus, $t1")

    def test_fp_instructions(self):
        exe = assemble(
            """
            .org 0
            lwc1 $f0, 0($t0)
            add.s $f2, $f0, $f1
            cvt.w.s $f3, $f2
            mfc1 $t1, $f3
            lt.s $f0, $f1
            bc1t 0
            """
        )
        names = [decode(w).name for _, w in sorted(exe.words.items())]
        assert names == ["lwc1", "add.s", "cvt.w.s", "mfc1", "lt.s", "bc1t"]


def run_program(src: str, max_steps=100000) -> Iss:
    exe = assemble(src)
    iss = Iss.load(exe)
    iss.run(max_steps)
    return iss


HALT = """
    li   $t9, 0x40000004
    sw   $zero, 0($t9)
"""

PRINT_V0 = """
    li   $t8, 0x40000000
    sw   $v0, 0($t8)
"""


class TestIss:
    def test_arith_loop(self):
        iss = run_program(
            f"""
            .org 0x400
                li   $t0, 0        # sum
                li   $t1, 1        # i
            loop:
                add  $t0, $t0, $t1
                addiu $t1, $t1, 1
                ble  $t1, $t2, loop   # t2 == 0 -> falls through at once? set below
                li   $t2, 10
                ble  $t1, $t2, loop
                move $v0, $t0
            {PRINT_V0}
            {HALT}
            """
        )
        assert iss.outputs == [55]

    def test_memory_and_bytes(self):
        iss = run_program(
            f"""
            .org 0x400
                li   $t0, 0x10000
                li   $t1, 0x11223344
                sw   $t1, 0($t0)
                lbu  $t2, 0($t0)
                lbu  $t3, 3($t0)
                lhu  $t4, 2($t0)
                sb   $t3, 4($t0)
                lw   $v0, 4($t0)
            {PRINT_V0}
            {HALT}
            """
        )
        assert iss.regs[10] == 0x44
        assert iss.regs[11] == 0x11
        assert iss.regs[12] == 0x1122
        assert iss.outputs == [0x11]

    def test_mult_div_hilo(self):
        iss = run_program(
            f"""
            .org 0x400
                li   $t0, 100000
                li   $t1, 30000
                mult $t0, $t1
                mflo $v0
            {PRINT_V0}
                mfhi $v0
            {PRINT_V0}
                li   $t0, 17
                li   $t1, 5
                div  $t0, $t1
                mflo $v0
            {PRINT_V0}
                mfhi $v0
            {PRINT_V0}
            {HALT}
            """
        )
        product = 100000 * 30000
        assert iss.outputs == [product & 0xFFFFFFFF, product >> 32, 3, 2]

    def test_function_call(self):
        iss = run_program(
            f"""
            .org 0x400
                li   $a0, 6
                jal  fact
                move $v0, $v1
            {PRINT_V0}
            {HALT}
            fact:
                li   $v1, 1
                li   $t0, 1
            floop:
                bgt  $t0, $a0, fdone
                mult $v1, $t0
                mflo $v1
                addiu $t0, $t0, 1
                b    floop
            fdone:
                jr   $ra
            """
        )
        assert iss.outputs == [720]

    def test_fpu_program(self):
        iss = run_program(
            f"""
            .org 0x400
                la    $t0, vals
                lwc1  $f0, 0($t0)
                lwc1  $f1, 4($t0)
                add.s $f2, $f0, $f1
                mul.s $f3, $f2, $f2
                cvt.w.s $f4, $f3
                mfc1  $v0, $f4
            {PRINT_V0}
            {HALT}
            vals: .float 1.5, 2.5
            """
        )
        assert iss.outputs == [16]  # (1.5+2.5)^2

    def test_fp_branch(self):
        iss = run_program(
            f"""
            .org 0x400
                la    $t0, vals
                lwc1  $f0, 0($t0)
                lwc1  $f1, 4($t0)
                lt.s  $f0, $f1
                bc1t  less
                li    $v0, 0
                b     done
            less:
                li    $v0, 1
            done:
            {PRINT_V0}
            {HALT}
            vals: .float -2.0, 3.0
            """
        )
        assert iss.outputs == [1]

    def test_unaligned_loads(self):
        iss = run_program(
            f"""
            .org 0x400
                li   $t0, 0x10000
                li   $t1, 0x44332211
                sw   $t1, 0($t0)
                li   $t2, 0x88776655
                sw   $t2, 4($t0)
                li   $v0, 0
                lwr  $v0, 2($t0)
                lwl  $v0, 5($t0)
            {PRINT_V0}
            {HALT}
            """
        )
        # little-endian unaligned word at byte offset 2: 0x66554433
        assert iss.outputs == [0x66554433]

    def test_security_instructions_recorded(self):
        iss = run_program(
            f"""
            .org 0x400
                li   $t0, 0x20000
                li   $t1, 1
                setrtag $t0, $t1
                li   $t2, 500
                setrtimer $t2
            {HALT}
            """
        )
        assert iss.tag_requests == [(0x20000, 1)]
        assert iss.timer_requests == [500]

    def test_halts_on_runaway(self):
        exe = assemble(".org 0x400\nspin: b spin")
        iss = Iss.load(exe)
        with pytest.raises(RuntimeError):
            iss.run(1000)

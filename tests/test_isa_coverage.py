"""E3 depth: every Figure-7 instruction group executes on the compiled
processor with results equal to the golden reference machine."""

from repro.mips.assembler import assemble
from repro.proc.machine import SapperMachine, run_on_iss

HALT = """
    li   $t9, 0x40000004
    sw   $zero, 0($t9)
"""

OUT = """
    li   $t8, 0x40000000
    sw   $v0, 0($t8)
"""


def run_both(body: str, max_cycles: int = 80_000):
    src = f".org 0x400\n{body}\n{HALT}"
    iss = run_on_iss(assemble(src))
    machine = SapperMachine()
    machine.load(assemble(src))
    res = machine.run(max_cycles)
    assert res.halted
    assert tuple(res.outputs) == tuple(iss.outputs), f"hw={res.outputs} iss={iss.outputs}"
    assert len(res.outputs) > 0
    return res


class TestAdditiveArithmetic:
    def test_add_addu_addiu_sub_subu(self):
        run_both(
            f"""
            li   $t0, 2000000000
            li   $t1, 1999999999
            addu $v0, $t0, $t1
            {OUT}
            add  $v0, $t0, $t1
            {OUT}
            addiu $v0, $t0, -5
            {OUT}
            sub  $v0, $t1, $t0
            {OUT}
            subu $v0, $t0, $t1
            {OUT}
            """
        )


class TestBinaryArithmetic:
    def test_logic_ops(self):
        run_both(
            f"""
            li   $t0, 0xF0F0A5A5
            li   $t1, 0x0FF0FF00
            and  $v0, $t0, $t1
            {OUT}
            andi $v0, $t0, 0xFFFF
            {OUT}
            or   $v0, $t0, $t1
            {OUT}
            ori  $v0, $t0, 0x1234
            {OUT}
            xor  $v0, $t0, $t1
            {OUT}
            xori $v0, $t0, 0xFF00
            {OUT}
            nor  $v0, $t0, $t1
            {OUT}
            """
        )

    def test_all_shift_forms(self):
        run_both(
            f"""
            li   $t0, 0x80000013
            li   $t1, 7
            sll  $v0, $t0, 3
            {OUT}
            srl  $v0, $t0, 3
            {OUT}
            sra  $v0, $t0, 3
            {OUT}
            sllv $v0, $t0, $t1
            {OUT}
            srlv $v0, $t0, $t1
            {OUT}
            srav $v0, $t0, $t1
            {OUT}
            """
        )


class TestMultiplicative:
    def test_mult_multu_div(self):
        run_both(
            f"""
            li   $t0, -123456
            li   $t1, 789
            mult $t0, $t1
            mflo $v0
            {OUT}
            mfhi $v0
            {OUT}
            multu $t0, $t1
            mfhi $v0
            {OUT}
            div  $t0, $t1
            mflo $v0
            {OUT}
            mfhi $v0
            {OUT}
            """
        )


class TestFpu:
    def test_all_fp_ops(self):
        run_both(
            f"""
            la    $t0, vals
            lwc1  $f0, 0($t0)
            lwc1  $f1, 4($t0)
            add.s $f2, $f0, $f1
            swc1  $f2, 8($t0)
            lw    $v0, 8($t0)
            {OUT}
            sub.s $f3, $f0, $f1
            mul.s $f4, $f3, $f2
            div.s $f5, $f4, $f1
            neg.s $f6, $f5
            abs.s $f7, $f6
            mov.s $f8, $f7
            cvt.w.s $f9, $f8
            mfc1  $v0, $f9
            {OUT}
            li    $t1, -9
            mtc1  $t1, $f10
            cvt.s.w $f11, $f10
            mfc1  $v0, $f11
            {OUT}
            lt.s  $f0, $f1
            bc1t  l1
            li    $v0, 100
            b     l2
            l1: li $v0, 200
            l2:
            {OUT}
            ge.s  $f0, $f1
            bc1f  l3
            li    $v0, 300
            b     l4
            l3: li $v0, 400
            l4:
            {OUT}
            gt.s  $f1, $f0
            bc1t  l5
            li    $v0, 500
            b     l6
            l5: li $v0, 600
            l6:
            {OUT}
            le.s  $f1, $f1
            bc1t  l7
            li    $v0, 700
            b     l8
            l7: li $v0, 800
            l8:
            {OUT}
            .org 0x10000
            vals: .float 2.75, -1.25, 0
            """,
        )


class TestBranches:
    def test_all_branch_forms(self):
        run_both(
            f"""
            li   $t0, -3
            li   $t1, 5
            li   $v0, 0
            beq  $t0, $t0, b1
            li   $v0, 1
            b1:
            {OUT}
            bne  $t0, $t1, b2
            li   $v0, 2
            b2:
            {OUT}
            bgt  $t1, $t0, b3
            li   $v0, 3
            b3:
            {OUT}
            ble  $t0, $t1, b4
            li   $v0, 4
            b4:
            {OUT}
            bltz $t0, b5
            li   $v0, 5
            b5:
            {OUT}
            bgez $t1, b6
            li   $v0, 6
            b6:
            {OUT}
            beql $t0, $t0, b7
            li   $v0, 7
            b7:
            {OUT}
            bnel $t0, $t1, b8
            li   $v0, 8
            b8:
            {OUT}
            blel $t0, $t1, b9
            li   $v0, 9
            b9:
            {OUT}
            bltzl $t0, b10
            li   $v0, 10
            b10:
            {OUT}
            """
        )


class TestJumps:
    def test_j_jal_jr_jalr(self):
        run_both(
            f"""
            li   $v0, 1
            j    skip1
            li   $v0, 99
            skip1:
            {OUT}
            jal  sub1
            {OUT}
            la   $t0, sub2
            jalr $t1, $t0
            {OUT}
            b    done
            sub1:
            li   $v0, 2
            jr   $ra
            sub2:
            li   $v0, 3
            jr   $t1
            done:
            """
        )


class TestMemoryOps:
    def test_all_loads_stores(self):
        run_both(
            f"""
            li   $t0, 0x10000
            li   $t1, 0x8899AABB
            sw   $t1, 0($t0)
            sh   $t1, 4($t0)
            sb   $t1, 6($t0)
            lw   $v0, 0($t0)
            {OUT}
            lb   $v0, 3($t0)
            {OUT}
            lbu  $v0, 3($t0)
            {OUT}
            lhu  $v0, 0($t0)
            {OUT}
            lw   $v0, 4($t0)
            {OUT}
            li   $v0, 0
            lwl  $v0, 6($t0)
            {OUT}
            li   $v0, 0
            lwr  $v0, 1($t0)
            {OUT}
            swl  $t1, 9($t0)
            lw   $v0, 8($t0)
            {OUT}
            swr  $t1, 13($t0)
            lw   $v0, 12($t0)
            {OUT}
            """
        )


class TestOthers:
    def test_slti_sltiu_lui(self):
        run_both(
            f"""
            li   $t0, -7
            slti $v0, $t0, 5
            {OUT}
            sltiu $v0, $t0, 5
            {OUT}
            lui  $v0, 0xBEEF
            {OUT}
            slt  $v0, $t0, $zero
            {OUT}
            sltu $v0, $t0, $zero
            {OUT}
            """
        )

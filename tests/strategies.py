"""Hypothesis strategies generating random well-formed Sapper programs.

Used by the noninterference property tests (Theorem 1), the randomized
compiler-conformance tests, and the batched-simulator equivalence
suites.  Generated programs always satisfy the Appendix A.1
well-formedness conditions by construction: every state body ends in a
terminator, branch arms agree on termination, gotos stay within sibling
groups, and only non-leaf states fall.

Register widths are drawn from :data:`REG_WIDTHS`, which spans the
1-bit edge case, the 33-bit SWAR packing boundary, and 34 bits (one
past it, exercising the batched simulator's per-lane fallback tier);
expression constants and slices adapt to the drawn widths instead of
assuming the old fixed 8-bit registers.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sapper import ast

LABELS = [None, "L", "H"]  # None = dynamic tagged

REG_NAMES = ["r0", "r1", "r2", "r3"]
INPUT_SPECS = [("in_lo", "L"), ("in_hi", "H"), ("in_dyn", None)]
ARRAY = "buf"

#: Candidate register widths: 1-bit edge case, a couple of ordinary
#: datapath widths, and the 32/33/34 SWAR boundary neighbourhood.
REG_WIDTHS = [1, 2, 8, 16, 32, 33, 34]


def reg_widths() -> st.SearchStrategy[int]:
    """Signal-width strategy covering the SWAR boundary and edge cases."""
    return st.sampled_from(REG_WIDTHS)


@st.composite
def constants(draw, width: int) -> ast.Const:
    """A constant that fits *width* bits, biased toward boundary values."""
    mask = (1 << width) - 1
    value = draw(
        st.integers(0, min(mask, 255))
        | st.sampled_from([0, 1, mask, 1 << (width - 1)])
    )
    return ast.Const(value & mask, width)


@st.composite
def expressions(draw, widths: dict[str, int], depth: int = 0) -> ast.Exp:
    choices = ["const", "reg", "input"]
    if depth < 2:
        choices += ["binop", "binop", "cond", "slice", "arr"]
    kind = draw(st.sampled_from(choices))
    if kind == "const":
        return draw(constants(draw(st.sampled_from(sorted(set(widths.values()))))))
    if kind == "reg":
        return ast.RegRef(draw(st.sampled_from(REG_NAMES)))
    if kind == "input":
        return ast.RegRef(draw(st.sampled_from([n for n, _ in INPUT_SPECS])))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "&", "|", "^", "==", "<", "*", ">>", "%"]))
        return ast.BinOp(
            op, draw(expressions(widths, depth + 1)), draw(expressions(widths, depth + 1))
        )
    if kind == "cond":
        return ast.Cond(
            draw(expressions(widths, depth + 1)),
            draw(expressions(widths, depth + 1)),
            draw(expressions(widths, depth + 1)),
        )
    if kind == "slice":
        name = draw(st.sampled_from(REG_NAMES))
        hi = draw(st.integers(0, widths[name] - 1))
        lo = draw(st.integers(0, hi))
        return ast.Slice(ast.RegRef(name), hi, lo)
    return ast.ArrIndex(ARRAY, draw(expressions(widths, depth + 1)))


@st.composite
def plain_commands(draw, labeller, widths: dict[str, int], depth: int = 0) -> ast.Cmd:
    """Commands with no goto/fall (usable anywhere in a body)."""
    choices = ["assign", "assign", "arr", "settag"]
    if depth < 2:
        choices += ["if", "if", "otherwise"]
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        return ast.AssignReg(draw(st.sampled_from(REG_NAMES)), draw(expressions(widths)))
    if kind == "arr":
        return ast.AssignArr(ARRAY, draw(expressions(widths, 2)), draw(expressions(widths, 1)))
    if kind == "settag":
        return ast.SetTag(
            ast.EntReg(draw(st.sampled_from(REG_NAMES))),
            ast.TagConst(draw(st.sampled_from(["L", "H"]))),
        )
    if kind == "otherwise":
        primary = ast.AssignReg(draw(st.sampled_from(REG_NAMES)), draw(expressions(widths)))
        handler = ast.AssignReg(draw(st.sampled_from(REG_NAMES)), draw(expressions(widths)))
        return ast.Otherwise(primary, handler)
    then = draw(st.lists(plain_commands(labeller, widths, depth + 1), min_size=1, max_size=2))
    els = draw(st.lists(plain_commands(labeller, widths, depth + 1), min_size=0, max_size=2))
    return ast.If(labeller(), draw(expressions(widths, 1)), ast.seq(*then), ast.seq(*els))


@st.composite
def terminators(
    draw, labeller, widths: dict[str, int], siblings: list[str], can_fall: bool
) -> ast.Cmd:
    """A command that always ends in goto/fall, possibly conditionally."""
    targets = st.sampled_from(siblings)
    shape = draw(st.sampled_from(["goto", "goto", "fall", "cond"]))
    if shape == "fall" and can_fall:
        return ast.Fall()
    if shape == "cond":
        then_t = ast.Goto(draw(targets))
        els_t = ast.Fall() if (can_fall and draw(st.booleans())) else ast.Goto(draw(targets))
        return ast.If(labeller(), draw(expressions(widths, 1)), then_t, els_t)
    return ast.Goto(draw(targets))


@st.composite
def programs(draw, widths: dict[str, int] | None = None) -> ast.Program:
    counter = [0]

    def labeller() -> str:
        counter[0] += 1
        return f"gif{counter[0]}"

    if widths is None:
        widths = {name: draw(reg_widths()) for name in REG_NAMES}
    for name, _label in INPUT_SPECS:
        widths.setdefault(name, 8)

    decls: list = []
    for name in REG_NAMES:
        decls.append(ast.RegDecl(name, widths[name], "reg", draw(st.sampled_from(LABELS))))
    for name, label in INPUT_SPECS:
        decls.append(ast.RegDecl(name, widths[name], "input", label))
    decls.append(ast.RegDecl("out_lo", 8, "output", "L"))
    decls.append(ast.ArrDecl(ARRAY, 8, 8, draw(st.sampled_from(["L", "H"]))))

    def body(siblings: list[str], can_fall: bool) -> ast.Cmd:
        cmds = draw(st.lists(plain_commands(labeller, widths), min_size=0, max_size=3))
        maybe_out = draw(st.booleans())
        if maybe_out:
            cmds.append(ast.AssignReg("out_lo", draw(expressions(widths))))
        cmds.append(draw(terminators(labeller, widths, siblings, can_fall)))
        return ast.seq(*cmds)

    # state A (enforced L, with 1-2 dynamic/enforced children), state B (enforced)
    kid_names = [f"k{i}" for i in range(draw(st.integers(1, 2)))]
    kids = tuple(
        ast.StateDef(
            k,
            body(kid_names, can_fall=False),
            label=draw(st.sampled_from([None, None, "H"])),
        )
        for k in kid_names
    )
    tops = ["A", "B"]
    state_a = ast.StateDef("A", body(tops, can_fall=True), label="L", children=kids)
    state_b = ast.StateDef("B", body(tops, can_fall=False), label=draw(st.sampled_from(["L", "H"])))
    return ast.Program(tuple(decls), (state_a, state_b), name="random")


@st.composite
def wide_programs(draw) -> ast.Program:
    """Programs whose registers straddle the SWAR boundary: at least one
    register at 32/33 bits and one at the 1/2-bit edge."""
    widths = {
        "r0": draw(st.sampled_from([32, 33])),
        "r1": draw(st.sampled_from([1, 2])),
        "r2": draw(st.sampled_from([8, 16, 33, 34])),
        "r3": draw(reg_widths()),
    }
    return draw(programs(widths=widths))


@st.composite
def stimulus_traces(draw, cycles: int):
    """Per-cycle (value, label) pairs for each input port."""
    trace = []
    for _ in range(cycles):
        entry = {}
        for name, fixed in INPUT_SPECS:
            value = draw(st.integers(0, 255))
            label = fixed or draw(st.sampled_from(["L", "H"]))
            entry[name] = (value, label)
        trace.append(entry)
    return trace

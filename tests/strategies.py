"""Hypothesis strategies generating random well-formed Sapper programs.

Used by the noninterference property tests (Theorem 1) and by the
randomized compiler-conformance tests.  Generated programs always
satisfy the Appendix A.1 well-formedness conditions by construction:
every state body ends in a terminator, branch arms agree on
termination, gotos stay within sibling groups, and only non-leaf states
fall.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sapper import ast

LABELS = [None, "L", "H"]  # None = dynamic tagged

REG_NAMES = ["r0", "r1", "r2", "r3"]
INPUT_SPECS = [("in_lo", "L"), ("in_hi", "H"), ("in_dyn", None)]
ARRAY = "buf"


@st.composite
def expressions(draw, depth: int = 0) -> ast.Exp:
    choices = ["const", "reg", "input"]
    if depth < 2:
        choices += ["binop", "binop", "cond", "slice", "arr"]
    kind = draw(st.sampled_from(choices))
    if kind == "const":
        return ast.Const(draw(st.integers(0, 255)), 8)
    if kind == "reg":
        return ast.RegRef(draw(st.sampled_from(REG_NAMES)))
    if kind == "input":
        return ast.RegRef(draw(st.sampled_from([n for n, _ in INPUT_SPECS])))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "&", "|", "^", "==", "<", "*", ">>", "%"]))
        return ast.BinOp(op, draw(expressions(depth + 1)), draw(expressions(depth + 1)))
    if kind == "cond":
        return ast.Cond(
            draw(expressions(depth + 1)), draw(expressions(depth + 1)), draw(expressions(depth + 1))
        )
    if kind == "slice":
        hi = draw(st.integers(1, 7))
        lo = draw(st.integers(0, hi))
        return ast.Slice(ast.RegRef(draw(st.sampled_from(REG_NAMES))), hi, lo)
    return ast.ArrIndex(ARRAY, draw(expressions(depth + 1)))


@st.composite
def plain_commands(draw, labeller, depth: int = 0) -> ast.Cmd:
    """Commands with no goto/fall (usable anywhere in a body)."""
    choices = ["assign", "assign", "arr", "settag"]
    if depth < 2:
        choices += ["if", "if", "otherwise"]
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        return ast.AssignReg(draw(st.sampled_from(REG_NAMES)), draw(expressions()))
    if kind == "arr":
        return ast.AssignArr(ARRAY, draw(expressions(2)), draw(expressions(1)))
    if kind == "settag":
        return ast.SetTag(
            ast.EntReg(draw(st.sampled_from(REG_NAMES))),
            ast.TagConst(draw(st.sampled_from(["L", "H"]))),
        )
    if kind == "otherwise":
        primary = ast.AssignReg(draw(st.sampled_from(REG_NAMES)), draw(expressions()))
        handler = ast.AssignReg(draw(st.sampled_from(REG_NAMES)), draw(expressions()))
        return ast.Otherwise(primary, handler)
    then = draw(st.lists(plain_commands(labeller, depth + 1), min_size=1, max_size=2))
    els = draw(st.lists(plain_commands(labeller, depth + 1), min_size=0, max_size=2))
    return ast.If(labeller(), draw(expressions(1)), ast.seq(*then), ast.seq(*els))


@st.composite
def terminators(draw, labeller, siblings: list[str], can_fall: bool) -> ast.Cmd:
    """A command that always ends in goto/fall, possibly conditionally."""
    targets = st.sampled_from(siblings)
    shape = draw(st.sampled_from(["goto", "goto", "fall", "cond"]))
    if shape == "fall" and can_fall:
        return ast.Fall()
    if shape == "cond":
        then_t = ast.Goto(draw(targets))
        els_t = ast.Fall() if (can_fall and draw(st.booleans())) else ast.Goto(draw(targets))
        return ast.If(labeller(), draw(expressions(1)), then_t, els_t)
    return ast.Goto(draw(targets))


@st.composite
def programs(draw) -> ast.Program:
    counter = [0]

    def labeller() -> str:
        counter[0] += 1
        return f"gif{counter[0]}"

    decls: list = []
    for name in REG_NAMES:
        decls.append(ast.RegDecl(name, 8, "reg", draw(st.sampled_from(LABELS))))
    for name, label in INPUT_SPECS:
        decls.append(ast.RegDecl(name, 8, "input", label))
    decls.append(ast.RegDecl("out_lo", 8, "output", "L"))
    decls.append(ast.ArrDecl(ARRAY, 8, 8, draw(st.sampled_from(["L", "H"]))))

    def body(siblings: list[str], can_fall: bool) -> ast.Cmd:
        cmds = draw(st.lists(plain_commands(labeller), min_size=0, max_size=3))
        maybe_out = draw(st.booleans())
        if maybe_out:
            cmds.append(ast.AssignReg("out_lo", draw(expressions())))
        cmds.append(draw(terminators(labeller, siblings, can_fall)))
        return ast.seq(*cmds)

    # state A (enforced L, with 1-2 dynamic/enforced children), state B (enforced)
    kid_names = [f"k{i}" for i in range(draw(st.integers(1, 2)))]
    kids = tuple(
        ast.StateDef(
            k,
            body(kid_names, can_fall=False),
            label=draw(st.sampled_from([None, None, "H"])),
        )
        for k in kid_names
    )
    tops = ["A", "B"]
    state_a = ast.StateDef("A", body(tops, can_fall=True), label="L", children=kids)
    state_b = ast.StateDef("B", body(tops, can_fall=False), label=draw(st.sampled_from(["L", "H"])))
    return ast.Program(tuple(decls), (state_a, state_b), name="random")


@st.composite
def stimulus_traces(draw, cycles: int):
    """Per-cycle (value, label) pairs for each input port."""
    trace = []
    for _ in range(cycles):
        entry = {}
        for name, fixed in INPUT_SPECS:
            value = draw(st.integers(0, 255))
            label = fixed or draw(st.sampled_from(["L", "H"]))
            entry[name] = (value, label)
        trace.append(entry)
    return trace

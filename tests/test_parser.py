"""Unit tests for the Sapper lexer and parser."""

import pytest

from repro.sapper import ast
from repro.sapper.errors import SapperSyntaxError
from repro.sapper.lexer import tokenize
from repro.sapper.parser import parse_expression, parse_program
from repro.sapper import samples


class TestLexer:
    def test_keywords_and_idents(self):
        toks = tokenize("state foo goto fall")
        kinds = [(t.kind, t.text) for t in toks[:-1]]
        assert kinds == [
            ("keyword", "state"),
            ("ident", "foo"),
            ("keyword", "goto"),
            ("keyword", "fall"),
        ]

    def test_numbers(self):
        toks = tokenize("42 0x2A 0b101010 8'hFF 4'b1010 32'd7")
        values = [t.value for t in toks[:-1]]
        assert values == [42, 42, 42, 255, 10, 7]

    def test_line_comments(self):
        toks = tokenize("a // comment\nb")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_block_comments_track_lines(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].text == "x"
        assert toks[0].line == 2

    def test_multichar_punct(self):
        toks = tokenize(":= == != <= >= << >> && ||")
        assert [t.text for t in toks[:-1]] == [":=", "==", "!=", "<=", ">=", "<<", ">>", "&&", "||"]

    def test_unterminated_comment(self):
        with pytest.raises(SapperSyntaxError):
            tokenize("/* nope")

    def test_bad_char(self):
        with pytest.raises(SapperSyntaxError):
            tokenize("a @ b")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_parens(self):
        e = parse_expression("(1 + 2) * 3")
        assert isinstance(e, ast.BinOp) and e.op == "*"

    def test_ternary(self):
        e = parse_expression("a ? b : c")
        assert isinstance(e, ast.Cond)

    def test_slice(self):
        e = parse_expression("x[7:4]")
        assert isinstance(e, ast.Slice) and e.hi == 7 and e.lo == 4

    def test_index(self):
        e = parse_expression("x[i]")
        assert isinstance(e, ast.ArrIndex)

    def test_cat_sext(self):
        e = parse_expression("cat(a, b)")
        assert isinstance(e, ast.Cat) and len(e.parts) == 2
        e = parse_expression("sext(a, 32)")
        assert isinstance(e, ast.Ext) and e.signed and e.width == 32

    def test_signed_compare_functions(self):
        e = parse_expression("lts(a, b)")
        assert isinstance(e, ast.BinOp) and e.op == "lts"

    def test_tag_read_and_label_literal(self):
        e = parse_expression("tag(x) == `H")
        assert isinstance(e, ast.BinOp)
        assert isinstance(e.left, ast.TagOf)
        assert isinstance(e.right, ast.LabelLit) and e.right.label == "H"

    def test_unary(self):
        e = parse_expression("~a & -b")
        assert isinstance(e, ast.BinOp) and e.op == "&"
        assert isinstance(e.left, ast.UnOp) and e.left.op == "~"

    def test_trailing_garbage(self):
        with pytest.raises(SapperSyntaxError):
            parse_expression("a + b c")


class TestPrograms:
    def test_adder_check_shape(self):
        prog = parse_program(samples.ADDER_CHECK, "adder")
        regs = prog.reg_decls()
        assert regs["a"].label == "L" and regs["a"].enforced
        assert regs["b"].label is None
        assert regs["out"].kind == "output" and regs["out"].enforced
        assert len(prog.states) == 1 and prog.states[0].name == "main"
        assert prog.states[0].enforced

    def test_tdma_shape(self):
        prog = parse_program(samples.TDMA, "tdma")
        names = [s.name for s in prog.states]
        assert names == ["Master", "Slave"]
        slave = prog.states[1]
        assert [c.name for c in slave.children] == ["Pipeline"]
        assert not slave.children[0].enforced

    def test_mem_decl(self):
        prog = parse_program(
            """
            mem[31:0] memory[1024] : L;
            state s : L = { memory[0] := 1; goto s; }
            """
        )
        arrays = prog.arr_decls()
        assert arrays["memory"].size == 1024
        assert arrays["memory"].width == 32
        assert arrays["memory"].enforced

    def test_multi_name_decl(self):
        prog = parse_program("reg[3:0] x, y, z;\nstate s : L = { goto s; }")
        assert set(prog.reg_decls()) == {"x", "y", "z"}

    def test_if_labels_unique(self):
        prog = parse_program(
            """
            reg a;
            state s : L = {
                if (a) { a := 0; } else { a := 1; }
                if (a) { a := 1; }
                goto s;
            }
            """
        )
        labels = [c.label for c in prog.states[0].body.walk() if isinstance(c, ast.If)]
        assert len(labels) == len(set(labels)) == 2

    def test_case_desugars_to_if_chain(self):
        prog = parse_program(
            """
            reg[1:0] a; reg[3:0] r;
            state s : L = {
                case (a) {
                    0: { r := 1; }
                    1: { r := 2; }
                    default: { r := 3; }
                }
                goto s;
            }
            """
        )
        ifs = [c for c in prog.states[0].body.walk() if isinstance(c, ast.If)]
        assert len(ifs) == 2  # one per non-default arm

    def test_otherwise(self):
        prog = parse_program(
            """
            reg[7:0] a : L; reg[7:0] b;
            state s : L = {
                a := b otherwise a := 0;
                goto s;
            }
            """
        )
        others = [c for c in prog.states[0].body.walk() if isinstance(c, ast.Otherwise)]
        assert len(others) == 1
        assert isinstance(others[0].primary, ast.AssignReg)

    def test_nested_otherwise(self):
        prog = parse_program(
            """
            reg[7:0] a : L; reg[7:0] b : H; reg[7:0] c;
            state s : L = {
                a := c otherwise b := c otherwise skip;
                goto s;
            }
            """
        )
        others = [c for c in prog.states[0].body.walk() if isinstance(c, ast.Otherwise)]
        assert len(others) == 2

    def test_settag_forms(self):
        prog = parse_program(
            """
            reg[7:0] a : L;
            mem[7:0] arr[16] : L;
            state s : L = {
                setTag(a, H);
                setTag(arr[3], tag(a) | L);
                goto s;
            }
            """
        )
        tags = [c for c in prog.states[0].body.walk() if isinstance(c, ast.SetTag)]
        assert len(tags) == 2
        assert isinstance(tags[1].entity, ast.EntArr)
        assert isinstance(tags[1].tag, ast.TagJoin)

    def test_empty_program_rejected(self):
        with pytest.raises(SapperSyntaxError):
            parse_program("reg a;")

    def test_missing_semicolon(self):
        with pytest.raises(SapperSyntaxError):
            parse_program("reg a\nstate s : L = { goto s; }")

    def test_width_must_be_down_to_zero(self):
        with pytest.raises(SapperSyntaxError):
            parse_program("reg[7:1] a;\nstate s : L = { goto s; }")

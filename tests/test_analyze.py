"""The static analyzer: taint soundness, lint rules, and wiring.

Soundness is pinned differentially: :class:`ShadowSimulator` carries a
dynamic one-bit taint through random programs, and every signal it ever
taints must be marked tainted by the static
:class:`~repro.analyze.taint.TaintCertificate` -- *statically clean is
a proof*, which is what licenses the batched tiers to drop shadow
words for clean signals.  The lint rules are each proven to fire on a
seeded defect and to stay silent on every shipped sample design.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analyze import (
    PackedTaintTracker,
    ShadowSimulator,
    analyze_design,
    analyze_module,
    array_node,
    build_graph,
    compute_taint,
    default_taint_sources,
)
from repro.hdl import BatchSimulator, HConst, HOp, HRef, Module, Simulator
from repro.lattice import diamond, two_level
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.compiler import compile_program
from repro.sapper.crossval import encode_inputs
from repro.toolchain import Toolchain

from tests import strategies

SAMPLES = {
    "adder_check": samples.ADDER_CHECK,
    "adder_track": samples.ADDER_TRACK,
    "tdma": samples.TDMA,
}


def compile_source(source: str, secure: bool = True, name: str = "design", lattice=None):
    """Fresh compile each call: seeded-defect tests mutate the module."""
    lat = lattice if lattice is not None else two_level()
    return Toolchain().compile(source, lat, secure=secure, name=name)


def input_sources(design) -> tuple[str, ...]:
    """The taint sources that are input ports (what ShadowSimulator takes)."""
    return tuple(s for s in default_taint_sources(design) if s in design.module.inputs)


# -- differential soundness ----------------------------------------------------


class TestSoundness:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.one_of(strategies.programs(), strategies.wide_programs()), st.data())
    def test_shadow_values_bit_identical(self, program, data):
        """Carrying taint must not perturb values: ShadowSimulator and
        Simulator agree on outputs, registers, and array contents."""
        design = compile_source_program(program)
        module = design.module
        trace = data.draw(strategies.stimulus_traces(cycles=6))
        sim = Simulator(module, optimize=False)
        shadow = ShadowSimulator(module, input_sources(design))
        for entry in trace:
            inputs = encode_inputs(design, entry)
            assert sim.step(inputs) == shadow.step(inputs)
        assert sim.regs == shadow.regs
        assert sim.arrays == shadow.arrays

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.one_of(strategies.programs(), strategies.wide_programs()), st.data())
    def test_dynamic_taint_within_static_cone(self, program, data):
        """Soundness: any signal the dynamic oracle ever taints is
        statically tainted -- the certificate's clean set is a proof."""
        design = compile_source_program(program)
        module = design.module
        sources = input_sources(design)
        cert = compute_taint(module, sources)
        shadow = ShadowSimulator(module, sources)
        for entry in data.draw(strategies.stimulus_traces(cycles=8)):
            shadow.step(encode_inputs(design, entry))
        escaped = shadow.ever_tainted - cert.tainted
        assert not escaped, f"dynamically tainted but statically clean: {sorted(escaped)}"
        # and every tainted node has a valid witness path back to a source
        for node in sorted(shadow.ever_tainted):
            path = cert.witness(node)
            assert path[0] in cert.sources and path[-1] == node

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.one_of(strategies.programs(), strategies.wide_programs()), st.data())
    def test_tracker_contains_oracle(self, program, data):
        """The packed value-independent tracker over-approximates the
        value-aware oracle, lane by lane."""
        design = compile_source_program(program)
        module = design.module
        sources = input_sources(design)
        cert = compute_taint(module, sources)
        shadow = ShadowSimulator(module, sources)
        tracker = PackedTaintTracker(module, cert, lanes=1)
        for entry in data.draw(strategies.stimulus_traces(cycles=8)):
            shadow.step(encode_inputs(design, entry))
            tracker.step()
        missed = {n for n in shadow.ever_tainted if not tracker.lane_tainted(0, n)}
        assert not missed, f"oracle-tainted but untracked: {sorted(missed)}"
        # and the tracker never invents nodes outside the static cone
        assert set(tracker.ever) <= cert.tainted


def compile_source_program(program):
    lat = two_level()
    info = analyze(program, lat)
    return compile_program(info, lat, secure=True, name="rand_analyze")


# -- the certificate -----------------------------------------------------------


class TestCertificate:
    def test_witness_paths_follow_graph_edges(self):
        design = compile_source(samples.TDMA, name="tdma")
        module = design.module
        cert = compute_taint(module, default_taint_sources(design))
        graph = build_graph(module)
        assert cert.tainted, "TDMA must have a nonempty taint cone"
        for node in sorted(cert.tainted):
            path = cert.witness(node)
            assert path[0] in cert.sources
            for pred, succ in zip(path, path[1:]):
                assert any(dst == succ for dst, _ in graph.succs[pred]), (
                    f"witness step {pred} -> {succ} is not a graph edge"
                )

    def test_clean_signal_has_no_witness(self):
        design = compile_source(samples.TDMA, name="tdma")
        cert = compute_taint(design.module, default_taint_sources(design))
        clean = next(n for n, _ in design.module.comb if n not in cert.tainted)
        with pytest.raises(ValueError, match="statically clean"):
            cert.witness(clean)

    def test_unknown_source_rejected(self):
        design = compile_source(samples.TDMA, name="tdma")
        with pytest.raises(ValueError, match="unknown taint source"):
            compute_taint(design.module, ("no_such_port",))

    def test_certificates_are_memoized_per_module(self):
        design = compile_source(samples.TDMA, name="tdma")
        sources = default_taint_sources(design)
        assert compute_taint(design.module, sources) is compute_taint(
            design.module, sources
        )

    def test_stats_census_is_consistent(self):
        design = compile_source(samples.TDMA, name="tdma")
        cert = compute_taint(design.module, default_taint_sources(design))
        stats = cert.stats
        assert stats["signals"] == stats["tainted_signals"] + stats["pruned_signals"]
        assert 0.0 < stats["prune_ratio"] < 1.0


# -- lint: clean on everything we ship ----------------------------------------


class TestLintClean:
    @pytest.mark.parametrize("name", sorted(SAMPLES))
    @pytest.mark.parametrize("secure", [True, False])
    def test_samples_have_zero_errors(self, name, secure):
        design = compile_source(SAMPLES[name], secure=secure, name=name)
        report = analyze_design(design)
        assert report.ok, [f.render() for f in report.errors]

    def test_insecure_design_prunes_everything(self):
        """With no tag ports and no labelled inputs, the whole design is
        statically clean: zero shadow words."""
        design = compile_source(samples.ADDER_TRACK, secure=False, name="adder")
        report = analyze_design(design)
        assert report.certificate.stats["tainted_signals"] == 0
        assert report.certificate.stats["prune_ratio"] == 1.0


# -- lint: every rule fires on a seeded defect --------------------------------


class TestLintRules:
    def seeded(self, mutate) -> list:
        design = compile_source(samples.TDMA, name="tdma")
        mutate(design.module)
        return analyze_module(design.module).findings

    def test_comb_loop_names_the_cycle(self):
        def mutate(m):
            m.comb.append(("loop_a", HOp("not", (HRef("loop_b", 4),), 4)))
            m.comb.append(("loop_b", HOp("not", (HRef("loop_a", 4),), 4)))

        findings = self.seeded(mutate)
        loops = [f for f in findings if f.rule == "comb-loop"]
        assert len(loops) == 1 and loops[0].severity == "error"
        assert "loop_a" in loops[0].message and "loop_b" in loops[0].message
        assert "2 signal(s)" in loops[0].message

    def test_comb_self_loop(self):
        def mutate(m):
            m.comb.append(("selfy", HOp("not", (HRef("selfy", 1),), 1)))

        loops = [f for f in self.seeded(mutate) if f.rule == "comb-loop"]
        assert len(loops) == 1 and "1 signal(s)" in loops[0].message

    def test_undriven_reference(self):
        def mutate(m):
            m.comb.append(("uses_ghost", HOp("not", (HRef("ghost", 4),), 4)))

        findings = [f for f in self.seeded(mutate) if f.rule == "undriven-signal"]
        assert any(f.location == "ghost" and "uses_ghost" in f.message for f in findings)

    def test_register_without_next(self):
        def mutate(m):
            m.add_reg("limbo", 4)

        findings = [f for f in self.seeded(mutate) if f.rule == "undriven-signal"]
        assert any(f.location == "limbo" and "no next-value" in f.message for f in findings)

    def test_multiply_driven(self):
        def mutate(m):
            name = m.comb[0][0]
            m.comb.append((name, HConst(0, 1)))

        findings = [f for f in self.seeded(mutate) if f.rule == "multiply-driven"]
        assert len(findings) == 1 and findings[0].severity == "error"

    def test_dead_input_port(self):
        def mutate(m):
            m.add_input("unused_in", 8)

        findings = [f for f in self.seeded(mutate) if f.rule == "dead-input"]
        assert [f.location for f in findings] == ["unused_in"]
        assert findings[0].severity == "warning"

    def test_width_finding_without_raising(self):
        def mutate(m):
            m.comb.append(("narrowed", HOp("zext", (HRef("slot", 2),), 1)))

        findings = [f for f in self.seeded(mutate) if f.rule == "width"]
        assert len(findings) == 1 and "extensions must widen" in findings[0].message

    def test_unreachable_state(self):
        source = """
        state main : L = {
            goto main;
        }
        state orphan : L = {
            goto main;
        }
        """
        design = compile_source(source, name="orphaned")
        findings = [
            f for f in analyze_design(design).findings if f.rule == "unreachable-state"
        ]
        assert [f.location for f in findings] == ["orphan"]

    def test_unused_level_closed_world(self):
        source = """
        input[7:0] a : L;
        output[7:0] o : L;
        state main : L = {
            o := a;
            goto main;
        }
        """
        design = compile_source(source, name="low_only")
        findings = [
            f for f in analyze_design(design).findings if f.rule == "unused-level"
        ]
        assert [f.location for f in findings] == ["H"]

    def test_unreachable_level_diamond(self):
        source = """
        input[7:0] a : L;
        output[7:0] o : L;
        reg[7:0] r : M1;
        state main : L = {
            r := a;
            o := a;
            goto main;
        }
        """
        design = compile_source(source, name="half_diamond", lattice=diamond())
        report = analyze_design(design)
        unreachable = [f for f in report.findings if f.rule == "unreachable-level"]
        assert {f.location for f in unreachable} == {"M2", "H"}

    def test_dynamic_tag_port_opens_the_world(self):
        """A design with a dynamic tag input can be handed any level:
        no unreachable-level findings."""
        design = compile_source(samples.ADDER_TRACK, name="adder")
        assert any(n.endswith("__tag") for n in design.module.inputs)
        report = analyze_design(design)
        assert not [f for f in report.findings if f.rule == "unreachable-level"]


# -- width discipline: Module.validate rejects, the checker reports -----------


class TestWidthValidate:
    def build(self, expr) -> Module:
        m = Module("width_case")
        m.add_input("a", 8)
        m.assign("y", expr)
        m.set_output("y", HRef("y", expr.width))
        return m

    @pytest.mark.parametrize(
        "expr, pattern",
        [
            (HOp("shr", (HRef("a", 8), HRef("a", 8)), 4), "wider"),
            (HOp("mod", (HRef("a", 8), HRef("a", 8)), 4), "wider"),
            (HOp("zext", (HRef("a", 8),), 4), "extensions must widen"),
            (HOp("sext", (HRef("a", 8),), 4), "extensions must widen"),
            (HOp("cat", (HRef("a", 8), HRef("a", 8)), 12), "bits of parts"),
            (HOp("slice", (HRef("a", 8),), 2, hi=4, lo=2), "inconsistent"),
            (HOp("slice", (HRef("a", 8),), 2, hi=1, lo=2), "inconsistent"),
            (HOp("eq", (HRef("a", 8), HRef("a", 8)), 8), "boolean operator"),
        ],
    )
    def test_validate_rejects(self, expr, pattern):
        m = self.build(expr)
        with pytest.raises(ValueError, match=pattern):
            m.validate()
        report = analyze_module(m)
        assert any(f.rule == "width" for f in report.findings)

    def test_read_width_must_match_array(self):
        m = Module("width_read")
        m.add_input("a", 8)
        m.add_array("buf", 8, 16)
        m.assign("y", HOp("read", (HRef("a", 8),), 4, array="buf"))
        m.set_output("y", HRef("y", 4))
        with pytest.raises(ValueError, match="word width"):
            m.validate()

    def test_write_port_data_must_fit_words(self):
        m = Module("width_write")
        m.add_input("a", 8)
        m.add_array("buf", 4, 16)
        m.write_array("buf", HConst(0, 4), HRef("a", 8), HConst(1, 1))
        with pytest.raises(ValueError, match="4-bit words"):
            m.validate()

    def test_write_port_undefined_ref_rejected(self):
        m = Module("width_write_ghost")
        m.add_array("buf", 8, 16)
        m.write_array("buf", HConst(0, 4), HRef("ghost", 8), HConst(1, 1))
        with pytest.raises(ValueError, match="undefined"):
            m.validate()

    def test_all_samples_still_validate(self):
        for name, source in SAMPLES.items():
            for secure in (True, False):
                compile_source(source, secure=secure, name=name).module.validate()


# -- tag-cone pruning in the batched tiers ------------------------------------


class TestTrackerPrune:
    def fresh(self, lanes=4, swar=False):
        design = compile_source(samples.TDMA, name="tdma")
        module = design.module
        sim = BatchSimulator(module, lanes, optimize=False, swar=swar)
        return design, module, sim

    def test_attach_reports_prune_and_keeps_bits_identical(self):
        design, module, sim = self.fresh()
        ref = BatchSimulator(module, 4, optimize=False)
        tracker = sim.attach_taint(sources=default_taint_sources(design))
        assert sim.taint is tracker
        stats = tracker.stats
        assert stats["pruned_signals"] > 0 and stats["tainted_signals"] > 0
        assert stats["tracked_words"] < stats["signals"]
        stim = [{"hi_in": lane + 1, "lo_in": lane + 5} for lane in range(4)]
        for _ in range(20):
            assert sim.step(stim) == ref.step(stim)

    def test_lane_masks_keep_unsourced_lanes_clean(self):
        design, module, sim = self.fresh()
        sources = default_taint_sources(design)
        tracker = sim.attach_taint(
            sources=sources, lane_masks={s: 0b0001 for s in sources}
        )
        for _ in range(10):
            sim.step({"hi_in": 9})
        assert tracker.ever_tainted(0)
        for lane in (1, 2, 3):
            assert not tracker.ever_tainted(lane)

    def test_lane_mask_for_non_source_rejected(self):
        design, module, sim = self.fresh()
        with pytest.raises(ValueError, match="not a taint source"):
            sim.attach_taint(
                sources=default_taint_sources(design), lane_masks={"lo_in": 1}
            )

    def test_attach_requires_sources_or_certificate(self):
        _design, _module, sim = self.fresh()
        with pytest.raises(ValueError, match="sources"):
            sim.attach_taint()

    def test_compact_repacks_taint_lanes(self):
        design, module, sim = self.fresh()
        sources = default_taint_sources(design)
        tracker = sim.attach_taint(
            sources=sources, lane_masks={s: 0b0101 for s in sources}
        )
        for _ in range(5):
            sim.step({"hi_in": 3})
        before = [tracker.ever_tainted(lane) for lane in range(4)]
        sim.compact([1])  # retire lane 1; lanes (0, 2, 3) survive
        assert tracker.lanes == 3
        assert [tracker.ever_tainted(pos) for pos in range(3)] == [
            before[0], before[2], before[3]
        ]

    def test_tracker_matches_shadow_on_every_tier(self):
        pytest.importorskip("numpy")
        from repro.hdl import VectorSimulator

        design = compile_source(samples.TDMA, name="tdma")
        module = design.module
        sources = default_taint_sources(design)
        shadow = ShadowSimulator(module, sources)
        stim = {"hi_in": 7, "lo_in": 1}
        for _ in range(12):
            shadow.step(encode_inputs(design, {k: (v, "L") for k, v in stim.items()}))
        sims = [
            BatchSimulator(module, 2, optimize=False, swar=False),
            BatchSimulator(module, 2, optimize=False, swar=True),
            VectorSimulator(module, 2, optimize=False),
        ]
        for sim in sims:
            tracker = sim.attach_taint(sources=sources)
            for _ in range(12):
                sim.step(stim)
            for node in shadow.ever_tainted:
                assert tracker.lane_tainted(0, node), (type(sim).__name__, node)


# -- toolchain + CLI + server wiring ------------------------------------------


class TestToolchainWiring:
    def test_analyze_design_is_cached(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        first = tc.analyze(design)
        again = tc.analyze(design)
        assert first is again
        counters = tc.counter_snapshot()
        assert counters.get("miss:check") == 1
        assert counters.get("hit:check") == 1

    def test_analyze_persists_across_toolchains(self, tmp_path):
        from repro.store import ArtifactStore

        tc1 = Toolchain(store=ArtifactStore(tmp_path))
        design1 = tc1.compile(samples.TDMA, two_level(), name="tdma")
        report1 = tc1.analyze(design1)

        tc2 = Toolchain(store=ArtifactStore(tmp_path))
        design2 = tc2.compile(samples.TDMA, two_level(), name="tdma")
        report2 = tc2.analyze(design2)
        assert tc2.counter_snapshot().get("store_hit:check") == 1
        assert report2.to_json() == report1.to_json()

    def test_analyze_plain_module(self):
        m = Module("plain")
        a = m.add_input("a", 8)
        y = m.fresh(HOp("add", (a, a), 8), "y")
        m.set_output("y", y)
        report = Toolchain().analyze(m)
        assert report.ok and report.certificate.stats["tainted_signals"] == 0

    def test_analyze_legacy_front_end_path(self):
        info = Toolchain().analyze(samples.TDMA, two_level())
        assert hasattr(info, "states")

    def test_analyze_source_without_lattice_is_a_type_error(self):
        with pytest.raises(TypeError, match="lattice"):
            Toolchain().analyze(samples.TDMA)


class TestCheckCommand:
    @pytest.fixture
    def tdma_path(self, tmp_path):
        path = tmp_path / "tdma.sapper"
        path.write_text(samples.TDMA)
        return str(path)

    def test_clean_design_exits_zero(self, tdma_path, capsys):
        from repro.cli import main

        assert main(["check", tdma_path]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out and "statically tainted" in out

    def test_json_format(self, tdma_path, capsys):
        from repro.cli import main

        assert main(["check", tdma_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["taint"]["pruned_signals"] > 0

    def test_seeded_comb_loop_exits_nonzero_naming_the_cycle(self, tdma_path, capsys):
        from repro.cli import main

        assert main(["check", tdma_path, "--seed-defect", "comb-loop"]) == 1
        out = capsys.readouterr().out
        assert "comb-loop" in out
        assert "seeded_loop_a -> seeded_loop_b" in out or (
            "seeded_loop_b -> seeded_loop_a" in out
        )

    def test_compile_error_still_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.sapper"
        bad.write_text("state main (L) {")
        assert main(["check", str(bad)]) == 1


class TestServerCheckOp:
    def test_check_op_reports_json(self, tmp_path):
        import asyncio

        from repro.server import ReproServer

        path = tmp_path / "tdma.sapper"
        path.write_text(samples.TDMA)
        server = ReproServer(max_workers=2)
        resp = asyncio.run(
            server.handle_request(
                {"id": 1, "op": "check", "source_path": str(path), "name": "tdma"}
            )
        )
        assert resp["ok"], resp
        result = resp["result"]
        assert result["ok"] is True and result["module"] == "tdma"
        assert result["taint"]["pruned_signals"] > 0

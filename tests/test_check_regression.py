"""Unit tests for the CI benchmark-regression gate.

``benchmarks/check_regression.py`` is the only thing standing between a
perf regression and a green build, and until now it was itself
untested.  Covered here: metric collection from pytest-benchmark JSON,
missing/new metrics, the exact-threshold boundary semantics (a value
*at* the limit passes; one past it fails), the below-measurable-timing
branch, and ``--update`` rebaselining.
"""

import importlib.util
import json
import pathlib

import pytest

_MODPATH = pathlib.Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _MODPATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def bench_json(names_means=None, extra=None):
    """A minimal pytest-benchmark --benchmark-json document."""
    benches = []
    for name, mean in (names_means or {}).items():
        benches.append({"name": name, "stats": {"mean": mean},
                        "extra_info": (extra or {}).get(name, {})})
    return {"benchmarks": benches}


def write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


BASE = {
    "gates": {"gates_optimized": 1000},
    "ratios": {"batch_speedup": 3.0, "swar_speedup": 1.5},
    "mean_seconds": {"test_x": 0.1},
}


def run_main(tmp_path, current, baseline=BASE, argv_extra=()):
    bench = write(tmp_path, "bench.json", current)
    basefile = write(tmp_path, "baseline.json", baseline)
    return check_regression.main([bench, "--baseline", basefile, *argv_extra])


def current_doc(gates=1000, batch=3.0, swar=1.5, mean=0.1):
    return bench_json(
        {"test_x": mean, "test_gates": 1e-6, "test_ratio": 1e-6},
        extra={
            "test_gates": {"gates_optimized": gates},
            "test_ratio": {"batch_speedup": batch, "swar_speedup": swar},
        },
    )


class TestCollect:
    def test_collect_classifies_extra_info(self):
        got = check_regression.collect(current_doc())
        assert got["gates"] == {"gates_optimized": 1000}
        assert got["ratios"] == {"batch_speedup": 3.0, "swar_speedup": 1.5}
        # stub benchmarks (attach-only lambdas) stay out of the timing gate
        assert got["mean_seconds"] == {"test_x": 0.1}
        assert set(got["names"]) == {"test_x", "test_gates", "test_ratio"}

    def test_swar_speedup_is_a_gated_ratio(self):
        assert "swar_speedup" in check_regression.RATIO_KEYS

    def test_compaction_speedup_is_a_gated_ratio(self):
        """The skewed-suite compaction ratio gates like the other
        machine-relative speedups; its companion diagnostics
        (occupancy, cohort_split_ratio) ride along in extra_info but
        are informational only."""
        assert "compaction_speedup" in check_regression.RATIO_KEYS
        doc = bench_json(
            {"test_skew": 1e-6},
            extra={"test_skew": {"compaction_speedup": 1.7,
                                 "occupancy": 0.41,
                                 "cohort_split_ratio": 0.02}},
        )
        got = check_regression.collect(doc)
        assert got["ratios"] == {"compaction_speedup": 1.7}
        assert "occupancy" not in got["gates"]

    def test_warm_start_speedup_is_a_gated_ratio(self):
        """The artifact-store warm-start ratio gates like the other
        machine-relative speedups; its companion diagnostic
        (warm_start_ms) is informational only."""
        assert "warm_start_speedup" in check_regression.RATIO_KEYS
        doc = bench_json(
            {"test_warm": 1e-6},
            extra={"test_warm": {"warm_start_speedup": 6.1,
                                 "warm_start_ms": 150.0}},
        )
        got = check_regression.collect(doc)
        assert got["ratios"] == {"warm_start_speedup": 6.1}
        assert "warm_start_ms" not in got["gates"]

    def test_fleet_speedup_is_a_gated_ratio(self):
        """The multiprocess fleet ratio gates like the other
        machine-relative speedups; its companion diagnostics
        (fleet_lane_cycles_per_sec, fleet_occupancy) are informational
        only."""
        assert "fleet_speedup" in check_regression.RATIO_KEYS
        doc = bench_json(
            {"test_fleet": 1e-6},
            extra={"test_fleet": {"fleet_speedup": 2.4,
                                  "fleet_lane_cycles_per_sec": 500000,
                                  "fleet_occupancy": 0.99}},
        )
        got = check_regression.collect(doc)
        assert got["ratios"] == {"fleet_speedup": 2.4}
        assert "fleet_occupancy" not in got["gates"]

    def test_fleet_ratio_below_floor_fails(self, tmp_path, capsys):
        base = {k: dict(v) for k, v in BASE.items()}
        base["ratios"]["fleet_speedup"] = 2.0
        doc = current_doc()
        doc["benchmarks"][2]["extra_info"]["fleet_speedup"] = 1.59
        assert run_main(tmp_path, doc, baseline=base) == 1  # floor 1.6
        assert "fleet_speedup" in capsys.readouterr().out
        doc["benchmarks"][2]["extra_info"]["fleet_speedup"] = 1.6
        assert run_main(tmp_path, doc, baseline=base) == 0

    def test_warm_start_ratio_below_floor_fails(self, tmp_path, capsys):
        base = {k: dict(v) for k, v in BASE.items()}
        base["ratios"]["warm_start_speedup"] = 5.0
        doc = current_doc()
        doc["benchmarks"][2]["extra_info"]["warm_start_speedup"] = 3.9
        assert run_main(tmp_path, doc, baseline=base) == 1  # floor 4.0
        assert "warm_start_speedup" in capsys.readouterr().out
        doc["benchmarks"][2]["extra_info"]["warm_start_speedup"] = 4.0
        assert run_main(tmp_path, doc, baseline=base) == 0

    def test_compaction_ratio_below_floor_fails(self, tmp_path, capsys):
        base = {k: dict(v) for k, v in BASE.items()}
        base["ratios"]["compaction_speedup"] = 1.6
        doc = current_doc()
        doc["benchmarks"][2]["extra_info"]["compaction_speedup"] = 1.27
        assert run_main(tmp_path, doc, baseline=base) == 1  # floor 1.28
        assert "compaction_speedup" in capsys.readouterr().out
        doc["benchmarks"][2]["extra_info"]["compaction_speedup"] = 1.28
        assert run_main(tmp_path, doc, baseline=base) == 0


class TestMissingAndNewMetrics:
    def test_missing_gate_metric_fails(self, tmp_path, capsys):
        doc = current_doc()
        doc["benchmarks"][1]["extra_info"] = {}
        assert run_main(tmp_path, doc) == 1
        assert "gates_optimized missing" in capsys.readouterr().out

    def test_missing_ratio_fails(self, tmp_path, capsys):
        doc = current_doc()
        doc["benchmarks"][2]["extra_info"] = {"batch_speedup": 3.0}
        assert run_main(tmp_path, doc) == 1
        assert "swar_speedup missing" in capsys.readouterr().out

    def test_missing_timing_fails(self, tmp_path, capsys):
        doc = current_doc()
        doc["benchmarks"] = [b for b in doc["benchmarks"] if b["name"] != "test_x"]
        assert run_main(tmp_path, doc) == 1
        assert "test_x missing" in capsys.readouterr().out

    def test_new_metric_not_in_baseline_is_ignored(self, tmp_path):
        doc = current_doc()
        doc["benchmarks"][2]["extra_info"]["brand_new_ratio"] = 9.9
        doc["benchmarks"].append(
            {"name": "test_new", "stats": {"mean": 5.0}, "extra_info": {}}
        )
        assert run_main(tmp_path, doc) == 0

    def test_below_threshold_timing_counts_as_improvement(self, tmp_path, capsys):
        # the benchmark still ran but finished under the stub filter
        doc = current_doc()
        doc["benchmarks"][0]["stats"]["mean"] = 1e-6
        assert run_main(tmp_path, doc) == 0
        assert "below measurable threshold" in capsys.readouterr().out


class TestThresholdBoundaries:
    def test_gates_exactly_at_limit_pass(self, tmp_path):
        assert run_main(tmp_path, current_doc(gates=1200)) == 0  # 1000 * 1.20

    def test_gates_one_past_limit_fail(self, tmp_path):
        assert run_main(tmp_path, current_doc(gates=1201)) == 1

    def test_ratio_exactly_at_floor_passes(self, tmp_path):
        assert run_main(tmp_path, current_doc(swar=1.2)) == 0  # 1.5 * 0.80

    def test_ratio_below_floor_fails(self, tmp_path, capsys):
        assert run_main(tmp_path, current_doc(swar=1.19)) == 1
        assert "swar_speedup" in capsys.readouterr().out

    def test_timing_at_throughput_limit_passes(self, tmp_path):
        assert run_main(tmp_path, current_doc(mean=0.3)) == 0  # 0.1 * 3.0

    def test_timing_past_throughput_limit_fails(self, tmp_path):
        assert run_main(tmp_path, current_doc(mean=0.30001)) == 1

    def test_strict_gates_timings_at_tolerance(self, tmp_path):
        assert run_main(tmp_path, current_doc(mean=0.121), argv_extra=["--strict"]) == 1
        assert run_main(tmp_path, current_doc(mean=0.119), argv_extra=["--strict"]) == 0


class TestUpdate:
    def test_update_rewrites_baseline_without_names(self, tmp_path):
        bench = write(tmp_path, "bench.json", current_doc(gates=777, swar=9.0))
        basefile = tmp_path / "baseline.json"
        basefile.write_text(json.dumps(BASE))
        assert check_regression.main(
            [bench, "--baseline", str(basefile), "--update"]
        ) == 0
        snap = json.loads(basefile.read_text())
        assert snap["gates"]["gates_optimized"] == 777
        assert snap["ratios"]["swar_speedup"] == 9.0
        assert "names" not in snap

    def test_updated_baseline_round_trips(self, tmp_path):
        bench = write(tmp_path, "bench.json", current_doc())
        basefile = tmp_path / "baseline.json"
        basefile.write_text(json.dumps(BASE))
        check_regression.main([bench, "--baseline", str(basefile), "--update"])
        assert check_regression.main([bench, "--baseline", str(basefile)]) == 0


@pytest.mark.parametrize("key", ["gates", "ratios", "mean_seconds"])
def test_empty_baseline_section_is_fine(tmp_path, key):
    base = {k: dict(v) for k, v in BASE.items()}
    base[key] = {}
    assert run_main(tmp_path, current_doc(), baseline=base) == 0

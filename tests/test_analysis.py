"""Unit tests for the static analysis (state tree, Fcd, Appendix A.1)."""

import pytest

from repro.lattice import two_level
from repro.sapper import ast
from repro.sapper.analysis import analyze
from repro.sapper.errors import SapperTypeError
from repro.sapper.parser import parse_program
from repro.sapper import samples


def info_of(src: str):
    return analyze(parse_program(src))


class TestStateTree:
    def test_tdma_tree(self):
        info = analyze(parse_program(samples.TDMA))
        assert info.parent["Master"] == ast.ROOT
        assert info.parent["Slave"] == ast.ROOT
        assert info.parent["Pipeline"] == "Slave"
        assert info.children[ast.ROOT] == ("Master", "Slave")
        assert info.default_child[ast.ROOT] == "Master"
        assert info.default_child["Slave"] == "Pipeline"
        assert info.depth["Pipeline"] == 2

    def test_descendants(self):
        info = analyze(parse_program(samples.TDMA))
        assert set(info.descendants(ast.ROOT)) == {"Master", "Slave", "Pipeline"}
        assert info.descendants("Slave") == ("Pipeline",)

    def test_initial_tags(self):
        info = analyze(parse_program(samples.TDMA))
        lat = two_level()
        assert info.initial_state_tag("Master", lat) == "L"
        assert info.initial_state_tag("Pipeline", lat) == "L"  # dynamic -> bottom
        assert info.initial_state_tag(ast.ROOT, lat) == "L"
        assert info.is_enforced_state("Master")
        assert not info.is_enforced_state("Pipeline")


class TestWellFormedness:
    def test_leaf_cannot_fall(self):
        with pytest.raises(SapperTypeError, match="fall"):
            info_of("state s : L = { fall; }")

    def test_goto_must_stay_in_group(self):
        src = """
        state a : L = {
            let state inner = { goto a; } in
            fall;
        }
        """
        with pytest.raises(SapperTypeError, match="sibling group"):
            info_of(src)

    def test_path_must_terminate(self):
        with pytest.raises(SapperTypeError, match="neither goto nor fall"):
            info_of("reg x;\nstate s : L = { x := 1; }")

    def test_branches_must_agree_on_terminators(self):
        src = """
        reg x;
        state s : L = {
            if (x) { goto s; } else { x := 1; }
            goto s;
        }
        """
        with pytest.raises(SapperTypeError, match="both branches"):
            info_of(src)

    def test_code_after_goto_rejected(self):
        src = """
        reg x;
        state s : L = { goto s; x := 1; }
        """
        with pytest.raises(SapperTypeError, match="unreachable"):
            info_of(src)

    def test_both_branches_terminating_is_fine(self):
        src = """
        reg x;
        state a : L = { if (x) { goto a; } else { goto b; } }
        state b : L = { goto a; }
        """
        info = info_of(src)
        assert set(info.children[ast.ROOT]) == {"a", "b"}

    def test_undeclared_variable(self):
        with pytest.raises(SapperTypeError, match="undeclared"):
            info_of("state s : L = { nope := 1; goto s; }")

    def test_assign_to_input_rejected(self):
        with pytest.raises(SapperTypeError, match="input"):
            info_of("input[7:0] x;\nstate s : L = { x := 1; goto s; }")

    def test_goto_unknown_state(self):
        with pytest.raises(SapperTypeError):
            info_of("state s : L = { goto nowhere; }")

    def test_duplicate_state_names(self):
        with pytest.raises(SapperTypeError, match="duplicate"):
            info_of("state s : L = { goto s; }\nstate s : L = { goto s; }")

    def test_settag_on_dynamic_array_rejected(self):
        src = """
        mem[7:0] arr[8];
        state s : L = { setTag(arr[0], H); goto s; }
        """
        with pytest.raises(SapperTypeError, match="dynamic array"):
            info_of(src)

    def test_otherwise_needs_enforceable_primary(self):
        # the concrete grammar cannot even produce this shape, so build it
        prog = ast.Program(
            (ast.RegDecl("x", 1),),
            (
                ast.StateDef(
                    "s",
                    ast.seq(
                        ast.Otherwise(ast.Skip(), ast.AssignReg("x", ast.Const(1))),
                        ast.Goto("s"),
                    ),
                    label="L",
                ),
            ),
        )
        with pytest.raises(SapperTypeError, match="enforceable"):
            analyze(prog)


class TestResolution:
    def test_scalar_index_becomes_bit_select(self):
        info = info_of(
            """
            reg[7:0] x; reg[2:0] i; reg b;
            state s : L = { b := x[i]; goto s; }
            """
        )
        assigns = [
            c
            for st in info.states.values()
            for c in st.body.walk()
            if isinstance(c, ast.AssignReg) and c.target == "b"
        ]
        assert isinstance(assigns[0].value, ast.BinOp)  # (x >> i) & 1

    def test_array_index_stays(self):
        info = info_of(
            """
            mem[7:0] arr[16]; reg[7:0] v;
            state s : L = { v := arr[3]; goto s; }
            """
        )
        assigns = [
            c
            for st in info.states.values()
            for c in st.body.walk()
            if isinstance(c, ast.AssignReg)
        ]
        assert isinstance(assigns[0].value, ast.ArrIndex)

    def test_entity_name_resolves_to_state(self):
        info = info_of(
            """
            reg[7:0] v;
            state s : L = { v := tag(s); goto s; }
            """
        )
        tag_reads = [
            e
            for st in info.states.values()
            for c in st.body.walk()
            for exp in c.expressions()
            for e in exp.walk()
            if isinstance(e, ast.TagOf)
        ]
        assert isinstance(tag_reads[0].entity, ast.EntState)


class TestFcd:
    def test_fcd_collects_dynamic_regs(self):
        info = info_of(
            """
            reg[7:0] d; reg[7:0] e : L; reg c;
            state s : L = {
                if (c) { d := 1; e := 2; }
                goto s;
            }
            """
        )
        label = next(iter(info.fcd_regs))
        assert info.fcd_regs[label] == {"d"}  # enforced e is checked, not tracked

    def test_fcd_collects_goto_targets_and_source(self):
        info = info_of(
            """
            reg c;
            state top : L = {
                let state p = {
                    if (c) { goto q; } else { goto p; }
                } in
                let state q = { goto p; } in
                fall;
            }
            """
        )
        (label,) = info.fcd_states.keys()
        # both dynamic targets and the enclosing dynamic state p
        assert info.fcd_states[label] == {"p", "q"}

    def test_fcd_includes_fall_children(self):
        info = analyze(parse_program(samples.TDMA))
        (label,) = [lbl for lbl in info.fcd_states]
        assert "Pipeline" in info.fcd_states[label]

    def test_fcd_dynamic_array(self):
        info = info_of(
            """
            mem[7:0] arr[8]; reg c;
            state s : L = {
                if (c) { arr[0] := 1; }
                goto s;
            }
            """
        )
        label = next(iter(info.fcd_arrays))
        assert info.fcd_arrays[label] == {"arr"}


class TestWidths:
    def test_width_inference(self):
        info = info_of(
            """
            reg[7:0] a; reg[3:0] b; reg c;
            state s : L = { c := a == b; goto s; }
            """
        )
        assert info.width_of(ast.RegRef("a")) == 8
        assert info.width_of(ast.BinOp("+", ast.RegRef("a"), ast.RegRef("b"))) == 9
        assert info.width_of(ast.BinOp("==", ast.RegRef("a"), ast.RegRef("b"))) == 1
        assert info.width_of(ast.BinOp("*", ast.RegRef("a"), ast.RegRef("b"))) == 12
        assert info.width_of(ast.Cat((ast.RegRef("a"), ast.RegRef("b")))) == 12
        assert info.width_of(ast.Slice(ast.RegRef("a"), 6, 2)) == 5

    def test_labels_used(self):
        info = analyze(parse_program(samples.TDMA))
        assert info.labels_used() == {"L", "H"}

"""Tests for the evaluation harness (tables/figures regeneration)."""

import pytest

from repro.eval.figures import (
    fig3_adder_verilog,
    fig7_isa_table,
    fig8_loc_table,
    fig9_overhead,
    format_fig9,
    format_table,
    sec46_diamond_overhead,
)
from repro.lattice import diamond, two_level


class TestFig3:
    def test_both_variants_emit(self):
        out = fig3_adder_verilog()
        assert "module adder_check" in out["check"]
        assert "module adder_track" in out["track"]
        assert "always @(posedge clk)" in out["check"]


class TestFig7:
    def test_nine_groups(self):
        table = fig7_isa_table()
        assert len(table) == 9
        groups = dict(table)
        assert "setrtag" in groups["Security Related"]
        assert "bc1t" in groups["Branch"]
        assert len(groups["FPU instructions"]) == 13


class TestFig8:
    def test_totals(self):
        rows = fig8_loc_table()
        by_name = dict(rows)
        assert by_name["Total"] == sum(v for k, v in rows if k != "Total")
        assert by_name["Execute + ALU + FPU"] > 100

    def test_diamond_variant_counts(self):
        rows = fig8_loc_table(diamond())
        assert dict(rows)["Total"] > 500


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig9_overhead(two_level())

    def test_ordering(self, rows):
        base = rows["Base Processor"]
        assert rows["GLIFT"].area_um2 > rows["Caisson"].area_um2 > rows["Sapper"].area_um2 > base.area_um2

    def test_sapper_close_to_base(self, rows):
        base = rows["Base Processor"]
        n = rows["Sapper"].normalized(base)
        assert n["area"] < 1.5
        assert n["delay"] < 1.05

    def test_memory_column(self, rows):
        base = rows["Base Processor"]
        assert rows["GLIFT"].normalized(base)["memory"] == 2.0
        assert rows["Caisson"].normalized(base)["memory"] == 2.0
        assert abs(rows["Sapper"].normalized(base)["memory"] - 1.03125) < 1e-9

    def test_format(self, rows):
        text = format_fig9(rows)
        assert "Base Processor" in text and "Sapper" in text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

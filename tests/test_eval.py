"""Tests for the evaluation harness (tables/figures regeneration)."""

import pytest

from repro.eval.figures import (
    fig3_adder_verilog,
    fig7_isa_table,
    fig8_loc_table,
    fig9_overhead,
    format_fig9,
    format_table,
)
from repro.lattice import diamond, two_level


class TestFig3:
    def test_both_variants_emit(self):
        out = fig3_adder_verilog()
        assert "module adder_check" in out["check"]
        assert "module adder_track" in out["track"]
        assert "always @(posedge clk)" in out["check"]


class TestFig7:
    def test_nine_groups(self):
        table = fig7_isa_table()
        assert len(table) == 9
        groups = dict(table)
        assert "setrtag" in groups["Security Related"]
        assert "bc1t" in groups["Branch"]
        assert len(groups["FPU instructions"]) == 13


class TestFig8:
    def test_totals(self):
        rows = fig8_loc_table()
        by_name = dict(rows)
        assert by_name["Total"] == sum(v for k, v in rows if k != "Total")
        assert by_name["Execute + ALU + FPU"] > 100

    def test_diamond_variant_counts(self):
        rows = fig8_loc_table(diamond())
        assert dict(rows)["Total"] > 500


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig9_overhead(two_level())

    def test_ordering(self, rows):
        base = rows["Base Processor"]
        assert (
            rows["GLIFT"].area_um2
            > rows["Caisson"].area_um2
            > rows["Sapper"].area_um2
            > base.area_um2
        )

    def test_sapper_close_to_base(self, rows):
        base = rows["Base Processor"]
        n = rows["Sapper"].normalized(base)
        assert n["area"] < 1.5
        assert n["delay"] < 1.05

    def test_memory_column(self, rows):
        base = rows["Base Processor"]
        assert rows["GLIFT"].normalized(base)["memory"] == 2.0
        assert rows["Caisson"].normalized(base)["memory"] == 2.0
        assert abs(rows["Sapper"].normalized(base)["memory"] - 1.03125) < 1e-9

    def test_format(self, rows):
        text = format_fig9(rows)
        assert "Base Processor" in text and "Sapper" in text


class TestBatchedWorkloadRuns:
    def test_batched_and_scalar_hw_results_agree(self):
        # the two fastest workloads, forced through both engines: the
        # lane-batched machine must reproduce the scalar runs exactly
        from repro.eval.figures import sec43_functional_validation

        names = ["specrand", "fft"]
        scalar = sec43_functional_validation(names=names, batched=False)
        batched = sec43_functional_validation(names=names, batched=True)
        assert len(scalar) == len(batched) == 2
        for s, b in zip(scalar, batched):
            assert s == b, f"{s['workload']}: batched/scalar runs diverge"
            assert b["hw_matches"] and b["iss_matches"]

    def test_run_workloads_auto_threshold(self):
        from repro.mips.assembler import assemble
        from repro.proc.machine import BatchedMachines, run_workloads
        from repro.workloads import ALL_WORKLOADS

        exe = assemble(ALL_WORKLOADS["specrand"].source)
        # small suites pick the scalar engine automatically; forcing
        # batched must give the same result
        auto = run_workloads([exe], max_cycles=5000)
        forced = run_workloads([exe], max_cycles=5000, batched=True)
        assert auto == forced
        assert len(auto) == 1 and auto[0].halted
        assert BatchedMachines.MIN_LANES > 1


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

"""Mechanical check of Theorem 1 (noninterference).

Two executions whose configurations are L-equivalent and whose low
inputs agree must remain L-equivalent after every cycle -- and in
particular their low-observable outputs must be identical, cycle for
cycle (the theorem is timing-sensitive).

We test this three ways:

* hand-written attack programs covering every channel the paper
  discusses (explicit flows, implicit flows, goto/timing channels, fall
  channels, array-index channels, setTag laundering);
* randomized programs via hypothesis (tests/strategies.py);
* the same property on the *compiled hardware* for the fixed programs,
  closing the loop on the compiler.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.noninterference import configs_equivalent
from repro.sapper.parser import parse_program
from repro.sapper.semantics import Interpreter

from tests import strategies


def paired_run(info, lattice, trace_pairs, observer="L"):
    """Run two interpreters; inputs agree on labels everywhere and on
    values wherever the label flows to *observer*.  Assert L-equivalence
    and equal observable outputs at every cycle."""
    it1 = Interpreter(info, lattice)
    it2 = Interpreter(info, lattice)
    for cycle, (in1, in2) in enumerate(trace_pairs):
        out1 = it1.run_cycle(in1)
        out2 = it2.run_cycle(in2)
        for port in out1:
            v1, t1 = out1[port]
            v2, t2 = out2[port]
            vis1 = lattice.leq(t1, observer)
            vis2 = lattice.leq(t2, observer)
            assert vis1 == vis2, f"cycle {cycle}: output {port} visibility differs"
            if vis1:
                assert v1 == v2, f"cycle {cycle}: low output {port}: {v1} != {v2}"
        report = configs_equivalent(it1, it2, observer)
        assert report, f"cycle {cycle}: " + "; ".join(report.mismatches[:8])


def vary_high(trace, observer, lattice, offset=77):
    """Build the paired trace: same labels, values differ iff label is
    not observable at *observer*."""
    pairs = []
    for entry in trace:
        e1, e2 = {}, {}
        for name, (value, label) in entry.items():
            e1[name] = (value, label)
            if lattice.leq(label, observer):
                e2[name] = (value, label)
            else:
                e2[name] = ((value + offset) & 0xFF, label)
        pairs.append((e1, e2))
    return pairs


def build(src):
    lat = two_level()
    return analyze(parse_program(src), lat), lat


class TestAttackPrograms:
    def test_explicit_flow(self):
        info, lat = build(
            """
            reg[7:0] lo : L; input[7:0] hi : H; output[7:0] out_lo : L;
            state s : L = { lo := hi; out_lo := lo; goto s; }
            """
        )
        trace = [{"hi": (i * 13, "H")} for i in range(10)]
        paired_run(info, lat, vary_high(trace, "L", lat))

    def test_implicit_flow(self):
        info, lat = build(
            """
            reg[7:0] lo : L; input h : H; output[7:0] out_lo : L;
            state s : L = {
                if (h) { lo := 1; } else { lo := 2; }
                out_lo := lo;
                goto s;
            }
            """
        )
        trace = [{"h": (i & 1, "H")} for i in range(8)]
        paired_run(info, lat, vary_high(trace, "L", lat))

    def test_goto_timing_channel(self):
        # high data tries to choose which low state runs next cycle
        info, lat = build(
            """
            input h : H; reg[7:0] c1; reg[7:0] c2; output[7:0] out_lo : L;
            state a : L = {
                c1 := c1 + 1;
                out_lo := c1;
                if (h) { goto b; } else { goto a; }
            }
            state b : L = { c2 := c2 + 1; out_lo := c2; goto a; }
            """
        )
        trace = [{"h": (i % 3 == 0, "H")} for i in range(12)]
        paired_run(info, lat, vary_high(trace, "L", lat))

    def test_fall_channel(self):
        # high data tries to choose which child state runs
        info, lat = build(
            """
            input h : H; reg[7:0] w1; reg[7:0] w2; output[7:0] out_lo : L;
            state top : L = {
                let state p = { w1 := w1 + 1; goto q; } in
                let state q = { w2 := w2 + 1; goto p; } in
                if (h) { goto top; } else { fall; }
            }
            """
        )
        trace = [{"h": (i & 1, "H")} for i in range(12)]
        paired_run(info, lat, vary_high(trace, "L", lat))

    def test_array_index_channel(self):
        # writing at a high-dependent index must not alter low-visible cells
        info, lat = build(
            """
            input[2:0] hidx : H; mem[7:0] buf[8] : L; output[7:0] out_lo : L;
            state s : L = {
                buf[hidx] := 1;
                out_lo := buf[0] + buf[1];
                goto s;
            }
            """
        )
        trace = [{"hidx": (i % 8, "H")} for i in range(10)]
        paired_run(info, lat, vary_high(trace, "L", lat, offset=3))

    def test_settag_laundering(self):
        # a high context cannot downgrade data to exfiltrate it
        info, lat = build(
            """
            input h : H; reg[7:0] sec : H; input[7:0] hv : H;
            output[7:0] out_lo : L;
            state s : L = {
                sec := hv;
                if (h) { setTag(sec, L); }
                out_lo := sec otherwise out_lo := 0;
                goto s;
            }
            """
        )
        trace = [{"h": (i & 1, "H"), "hv": (i * 7, "H")} for i in range(10)]
        paired_run(info, lat, vary_high(trace, "L", lat))

    def test_timer_preemption_is_deterministic(self):
        info, lat = build(samples.TDMA)
        trace = [{"hi_in": (i * 5, "H"), "lo_in": (i, "L")} for i in range(120)]
        paired_run(info, lat, vary_high(trace, "L", lat))

    def test_dynamic_state_self_goto(self):
        # a dynamic state branching on high data about whether to re-run itself
        info, lat = build(
            """
            input[7:0] h : H; reg[7:0] c; output[7:0] out_lo : L;
            state top : L = {
                let state p = {
                    if (h > 100) { goto q; } else { goto p; }
                } in
                let state q = { c := c + 1; goto p; } in
                out_lo := out_lo + 1;
                fall;
            }
            """
        )
        trace = [{"h": (i * 31, "H")} for i in range(16)]
        paired_run(info, lat, vary_high(trace, "L", lat))


class TestRandomizedNoninterference:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), strategies.stimulus_traces(cycles=8))
    def test_theorem1_on_random_programs(self, program, trace):
        lat = two_level()
        info = analyze(program, lat)
        paired_run(info, lat, vary_high(trace, "L", lat))

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), strategies.stimulus_traces(cycles=6))
    def test_compiler_conformance_on_random_programs(self, program, trace):
        # three-way: interpreter vs raw hardware vs optimized hardware --
        # cycle-by-cycle state, tags, and violation events must all match
        from repro.sapper.crossval import CrossValidation

        lat = two_level()
        info = analyze(program, lat)
        cv = CrossValidation.build(info, lat)
        assert cv.opt_sim is not None
        for entry in trace:
            cv.run_cycle(entry)
        assert not cv.mismatches, str(cv.mismatches[:6])


class TestHardwareNoninterference:
    """The same observation on the compiled design: low-tagged registers
    and outputs of two hardware runs agree when low inputs agree.

    The two runs execute as lanes of one
    :class:`~repro.hdl.batch.BatchSimulator` -- the paired-execution
    shape noninterference checking always has, and exactly what the
    batched engine exists for.  In ``compact+majority`` mode the pair
    runs inside a four-lane batch with an eager cohort-split threshold
    and the padding lanes are compacted away mid-trace, so the GLIFT
    tag behaviour is verified on the cohort-dispatch and compaction
    code paths, not just the generic step.
    """

    def _run_pair(self, src, trace_pairs, compacted=False):
        from repro.hdl import BatchSimulator
        from repro.sapper.compiler import compile_program
        from repro.sapper.crossval import encode_inputs

        lat = two_level()
        design = compile_program(src, lat, name="ni_hw")
        batch = BatchSimulator(design.module, 4 if compacted else 2)
        if compacted:
            batch.majority_fraction = 0.5

        for cycle, (in1, in2) in enumerate(trace_pairs):
            enc1, enc2 = encode_inputs(design, in1), encode_inputs(design, in2)
            if batch.lanes == 4:  # padding lanes replay run 1's stimulus
                o1, o2 = batch.step([enc1, enc2, enc1, enc1])[:2]
            else:
                o1, o2 = batch.step([enc1, enc2])
            for port in design.module.outputs:
                if port.endswith("__tag") or port == "violation":
                    continue
                t1, t2 = o1.get(f"{port}__tag", 0), o2.get(f"{port}__tag", 0)
                if t1 == 0 or t2 == 0:  # L-tagged in either run
                    assert t1 == t2 and o1[port] == o2[port], f"cycle {cycle}: {port}"
            for reg, tag_reg in design.reg_tag.items():
                t1, t2 = batch.get_reg(0, tag_reg), batch.get_reg(1, tag_reg)
                if t1 == 0 or t2 == 0:
                    assert t1 == t2, f"tag {reg}"
                    assert batch.get_reg(0, reg) == batch.get_reg(1, reg), f"reg {reg}"
            if compacted and batch.lanes == 4 and cycle >= len(trace_pairs) // 2:
                assert batch.compact([2, 3]) == [2, 3]
                assert batch.active_lanes == [0, 1]
        if compacted:
            assert batch.compactions == 1, "compaction path never exercised"

    @pytest.mark.parametrize("compacted", [False, True],
                             ids=["plain", "compact+majority"])
    def test_hardware_implicit_flow(self, compacted):
        lat = two_level()
        src = """
        reg[7:0] lo : L; reg[7:0] d; input h : H; output[7:0] out_lo : L;
        state s : L = {
            if (h) { d := 1; lo := 1; } else { d := 2; }
            out_lo := lo;
            goto s;
        }
        """
        trace = [{"h": (i & 1, "H")} for i in range(8)]
        self._run_pair(src, vary_high(trace, "L", lat), compacted)

    @pytest.mark.parametrize("compacted", [False, True],
                             ids=["plain", "compact+majority"])
    def test_hardware_tdma(self, compacted):
        lat = two_level()
        trace = [{"hi_in": (i * 3, "H"), "lo_in": (i, "L")} for i in range(120)]
        self._run_pair(samples.TDMA, vary_high(trace, "L", lat), compacted)

    def test_hardware_split_dispatch_carries_the_pair(self):
        """A noninterference pair plus two padding lanes whose FSM
        state legitimately diverges through a *low* selector (a high
        selector's goto would be suppressed by enforcement, keeping
        every lane uniform): the cohort split genuinely runs, and the
        pair's low-observable state must stay equal under the
        mask-merged write-back."""
        from repro.hdl import BatchSimulator
        from repro.sapper.compiler import compile_program
        from repro.sapper.crossval import encode_inputs

        src = """
        input[7:0] h : H; input[1:0] sel : L; reg[7:0] c1; reg[7:0] sec : H;
        output[7:0] out_lo : L;
        state a : L = {
            c1 := c1 + 1; sec := sec + h; out_lo := c1;
            if (sel == 1) { goto b; } else { goto a; }
        }
        state b : L = {
            c1 := c1 + 2; out_lo := c1;
            if (sel == 2) { goto c; } else { goto a; }
        }
        state c : L = { c1 := c1 + 3; goto a; }
        """
        design = compile_program(src, two_level(), name="ni_split")
        batch = BatchSimulator(design.module, 4)
        batch.majority_fraction = 0.5
        for cycle in range(24):
            enc1 = encode_inputs(
                design, {"h": (cycle * 7 & 255, "H"), "sel": (cycle % 3, "L")}
            )
            # run 2: same low stimulus, different high values
            enc2 = encode_inputs(
                design, {"h": ((cycle * 7 + 77) & 255, "H"), "sel": (cycle % 3, "L")}
            )
            # padding lanes: a shifted low schedule diverges their FSM
            enc3 = encode_inputs(
                design, {"h": (0, "H"), "sel": ((cycle + 1) % 3, "L")}
            )
            o1, o2 = batch.step([enc1, enc2, enc3, enc3])[:2]
            t1, t2 = o1.get("out_lo__tag", 0), o2.get("out_lo__tag", 0)
            if t1 == 0 or t2 == 0:
                assert t1 == t2 and o1["out_lo"] == o2["out_lo"], f"cycle {cycle}"
            for reg, tag_reg in design.reg_tag.items():
                rt1, rt2 = batch.get_reg(0, tag_reg), batch.get_reg(1, tag_reg)
                if rt1 == 0 or rt2 == 0:
                    assert rt1 == rt2, f"tag {reg}"
                    assert batch.get_reg(0, reg) == batch.get_reg(1, reg), f"reg {reg}"
        assert batch.split_steps > 0, "cohort dispatch never fired on the NI pair"
